package fleet

import (
	"encoding/json"
	"fmt"
	"io"
	"math"

	"repro/internal/des"
	"repro/internal/model"
	"repro/internal/portfolio"
	"repro/internal/solve"
	"repro/internal/workload"
)

// maxSpecNodes bounds fleet sizes accepted from untrusted input (the
// HTTP and CLI decode surfaces); programmatic users construct
// Scenarios directly.
const maxSpecNodes = 1 << 10

// NodeSpec is one node of the fleet wire format.
type NodeSpec struct {
	Name string `json:"name,omitempty"`
	// Platform defaults to the paper's TaihuLight node when omitted.
	Platform *des.PlatformSpec `json:"platform,omitempty"`
	// Policy is a des.ParsePolicy specification; empty means
	// DominantMinRatio repartitioning.
	Policy string `json:"policy,omitempty"`
	// MaxResident > 0 bounds node sharing; excess jobs queue FIFO.
	MaxResident int `json:"maxResident,omitempty"`
}

// Spec is the JSON fleet-scenario format of cmd/dessim -fleet and the
// /v1/simulate-fleet endpoint: the node list, the routing policy, the
// template applications and the fleet-wide arrival stream.
type Spec struct {
	Nodes []NodeSpec `json:"nodes"`
	// Routing selects the routing policy (see Routings); empty means
	// least-loaded.
	Routing string `json:"routing,omitempty"`
	// Apps are the template profiles jobs are stamped from (cycled in
	// arrival order). Empty means the paper's NPB Table 2 set.
	Apps []des.AppSpec `json:"apps,omitempty"`
	// Arrivals configures the fleet-wide arrival process.
	Arrivals des.ArrivalSpec `json:"arrivals"`
	// Duration > 0 cuts the arrival stream off at that virtual time.
	Duration float64 `json:"duration,omitempty"`
	// Seed drives every random draw of the run.
	Seed uint64 `json:"seed,omitempty"`
}

// DecodeSpec parses and validates a fleet scenario. Unknown fields are
// rejected so typos fail loudly rather than silently falling back to
// defaults.
func DecodeSpec(r io.Reader) (*Spec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var sp Spec
	if err := dec.Decode(&sp); err != nil {
		return nil, fmt.Errorf("fleet: parsing scenario: %w", err)
	}
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	return &sp, nil
}

// Validate checks the spec for structural problems: an empty fleet, an
// invalid node platform, an unknown routing policy, a malformed
// arrival spec.
func (sp *Spec) Validate() error {
	if len(sp.Nodes) == 0 {
		return fmt.Errorf("fleet: scenario needs at least one node")
	}
	if len(sp.Nodes) > maxSpecNodes {
		return fmt.Errorf("fleet: more than %d nodes", maxSpecNodes)
	}
	for i, n := range sp.Nodes {
		if n.Platform != nil {
			if err := n.Platform.Platform().Validate(); err != nil {
				return fmt.Errorf("fleet: node %d: %w", i, err)
			}
		}
		if n.MaxResident < 0 {
			return fmt.Errorf("fleet: node %d: maxResident must be >= 0, got %d", i, n.MaxResident)
		}
	}
	if _, err := ParseRouter(sp.Routing, 0); err != nil {
		return err
	}
	for i, a := range sp.Apps {
		if err := a.Application().Validate(); err != nil {
			return fmt.Errorf("fleet: template app %d: %w", i, err)
		}
	}
	if math.IsNaN(sp.Duration) || math.IsInf(sp.Duration, 0) || sp.Duration < 0 {
		return fmt.Errorf("fleet: duration must be finite and >= 0, got %v", sp.Duration)
	}
	return sp.Arrivals.Validate()
}

// Build turns the validated spec into a runnable Scenario. See
// BuildWith.
func (sp *Spec) Build(workers int) (Scenario, error) {
	return sp.BuildWith(nil, workers)
}

// BuildWith is Build with a caller-supplied portfolio engine backing
// "portfolio" node policies, so a server can share one worker pool
// across requests. A nil engine gives the run a private pool bounded
// by workers.
func (sp *Spec) BuildWith(engine *portfolio.Engine, workers int) (Scenario, error) {
	if err := sp.Validate(); err != nil {
		return Scenario{}, err
	}
	nodes := make([]Node, len(sp.Nodes))
	for i, n := range sp.Nodes {
		pl := model.TaihuLight()
		if n.Platform != nil {
			pl = n.Platform.Platform()
		}
		nodes[i] = Node{Name: n.Name, Platform: pl, Policy: n.Policy, MaxResident: n.MaxResident}
	}
	tpl := make([]model.Application, len(sp.Apps))
	for i, a := range sp.Apps {
		tpl[i] = a.Application()
	}
	if len(tpl) == 0 {
		tpl = workload.NPB()
	}
	factory, err := des.CycleApps(tpl)
	if err != nil {
		return Scenario{}, err
	}
	proc, err := sp.Arrivals.BuildProcess(factory, solve.NewRNG(sp.Seed))
	if err != nil {
		return Scenario{}, err
	}
	return Scenario{
		Nodes:    nodes,
		Routing:  sp.Routing,
		Arrivals: proc,
		Duration: sp.Duration,
		Seed:     sp.Seed,
		Workers:  workers,
		Engine:   engine,
	}, nil
}
