package fleet

import (
	"testing"

	"repro/internal/des"
)

// benchSpec is the common fleet shape of the benchmarks: four
// heterogeneous nodes behind the router, a 64-job Poisson stream over
// the NPB templates.
func benchSpec(routing, policy string) *Spec {
	nodes := make([]NodeSpec, 4)
	for i := range nodes {
		nodes[i] = NodeSpec{Policy: policy, MaxResident: 4}
	}
	return &Spec{
		Nodes:    nodes,
		Routing:  routing,
		Arrivals: des.ArrivalSpec{Process: "poisson", Rate: 8e-9, N: 64},
		Seed:     42,
	}
}

// BenchmarkFleetRoute measures the routing layer itself: per-arrival
// node advancement, state scoring (backlog, occupancy, affinity) and
// the routing decision, with the cheapest repartitioning policy so the
// router dominates the profile.
func BenchmarkFleetRoute(b *testing.B) {
	sp := benchSpec("cache-affinity", "DominantMinRatio")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc, err := sp.Build(1)
		if err != nil {
			b.Fatal(err)
		}
		res, err := Simulate(sc)
		if err != nil {
			b.Fatal(err)
		}
		if res.Jobs != 64 {
			b.Fatalf("routed %d jobs", res.Jobs)
		}
	}
}

// BenchmarkFleetDES measures the full fleet pipeline with
// portfolio-repartitioning nodes sharing one worker pool — the
// production shape, and the upper bound of per-event decision cost
// across the fleet.
func BenchmarkFleetDES(b *testing.B) {
	sp := benchSpec("least-loaded", "portfolio")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc, err := sp.Build(0)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := Simulate(sc); err != nil {
			b.Fatal(err)
		}
	}
}
