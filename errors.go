package repro

import (
	"repro/internal/model"
	"repro/internal/sched"
)

// The library's error vocabulary is small and typed, and it crosses
// every package boundary intact:
//
//   - ErrInfeasible is the sentinel for "no valid schedule exists";
//     test with errors.Is.
//   - *ValidationError carries the offending field, value and violated
//     constraint of a rejected input; test with errors.As.
//   - *HeuristicError names the scheduling policy behind a failure and
//     wraps its cause; test with errors.As (errors.Is sees through it).
//   - context.Canceled / context.DeadlineExceeded surface unwrapped
//     from every cancelled Client call; test with errors.Is.

// ErrInfeasible is returned when no valid schedule exists for the
// inputs (e.g. every heuristic failed, or zero applications).
var ErrInfeasible = sched.ErrInfeasible

// ValidationError is the typed form of every input-validation failure:
// invalid platforms, applications, schedules, cache shares and way
// counts all carry one. See model.ValidationError.
type ValidationError = model.ValidationError

// HeuristicError identifies the scheduling policy behind a failure and
// wraps the underlying cause. The portfolio engine attaches it to every
// per-heuristic failure; the online policies do the same. See
// sched.HeuristicError.
type HeuristicError = sched.HeuristicError
