package repro

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/des"
	"repro/internal/selector"
)

// testApps returns a distinct workload per index, so batch scenarios
// cannot collapse into one memoized cell.
func testApps(i int) []Application {
	apps := NPB()
	for j := range apps {
		apps[j].SeqFraction = 0.05
		apps[j].Work *= 1 + float64(i)/97
	}
	return apps
}

// waitGoroutines polls until the goroutine count drops back to the
// baseline (small slack for runtime helpers); it fails the test with a
// stack dump if leaked goroutines persist.
func waitGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("goroutines leaked: %d before, %d after\n%s", before, runtime.NumGoroutine(), buf)
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}

// pollCancelCtx is a deterministic cancellation source: it reports
// context.Canceled starting from the (after+1)-th Err poll. The layers
// under test poll Err in their loops, so this cancels "mid-run" without
// any timing dependence.
type pollCancelCtx struct {
	context.Context
	polls atomic.Int64
	after int64
}

func (c *pollCancelCtx) Err() error {
	if c.polls.Add(1) > c.after {
		return context.Canceled
	}
	return nil
}

func (c *pollCancelCtx) Done() <-chan struct{} {
	// The poll-driven layers never block on Done; returning nil keeps
	// selects (which treat nil as "never ready") from firing early.
	return nil
}

func TestClientOptions(t *testing.T) {
	c := NewClient(WithWorkers(3), WithHeuristics(DominantMinRatio, Fair), WithSeed(7), WithCache(false))
	if c.Workers() != 3 {
		t.Fatalf("workers = %d, want 3", c.Workers())
	}
	if st := c.Engine().CacheStats(); st.Hits != 0 || st.Misses != 0 || st.Entries != 0 {
		t.Fatalf("cache disabled but stats %+v", st)
	}
	pl := TaihuLight()
	_, rep, err := c.Best(context.Background(), pl, testApps(0))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 2 {
		t.Fatalf("%d results, want the 2 configured heuristics", len(rep.Results))
	}
}

// TestWithMetrics: an instrumented client produces bit-identical
// results to a bare one while its registry observes both the portfolio
// race and the online simulation; a nil registry is accepted and means
// off.
func TestWithMetrics(t *testing.T) {
	ctx := context.Background()
	pl := TaihuLight()
	apps := testApps(0)

	bare, _, err := NewClient(WithCache(false)).Best(ctx, pl, apps)
	if err != nil {
		t.Fatal(err)
	}
	reg := NewMetricsRegistry()
	c := NewClient(WithCache(false), WithMetrics(reg))
	got, _, err := c.Best(ctx, pl, apps)
	if err != nil {
		t.Fatal(err)
	}
	if got.Makespan != bare.Makespan {
		t.Errorf("instrumented Best makespan %v != bare %v", got.Makespan, bare.Makespan)
	}

	factory, err := CycleJobs(apps[:2])
	if err != nil {
		t.Fatal(err)
	}
	arr, err := PoissonArrivals(2e-9, 6, factory, NewRNG(42))
	if err != nil {
		t.Fatal(err)
	}
	pol, err := HeuristicRepartition(DominantMinRatio, 42)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.SimulateOnline(ctx, OnlineScenario{Platform: pl, Arrivals: arr, Policy: pol}); err != nil {
		t.Fatal(err)
	}

	byName := map[string]float64{}
	for _, s := range reg.Snapshot() {
		byName[s.Name] += s.Value
	}
	if byName["portfolio_batches_total"] == 0 {
		t.Error("registry missed the portfolio race")
	}
	if byName["des_simulations_total"] == 0 {
		t.Error("registry missed the online simulation")
	}

	// A nil registry is the documented off switch.
	off := NewClient(WithMetrics(nil))
	if _, _, err := off.Best(ctx, pl, apps); err != nil {
		t.Fatal(err)
	}
}

func TestClientScheduleMatchesDirect(t *testing.T) {
	c := NewClient()
	pl := TaihuLight()
	apps := testApps(0)
	got, err := c.Schedule(context.Background(), DominantMinRatio, pl, apps)
	if err != nil {
		t.Fatal(err)
	}
	want, err := DominantMinRatio.Schedule(pl, apps, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Makespan != want.Makespan {
		t.Fatalf("client schedule %v != direct %v", got.Makespan, want.Makespan)
	}
}

func TestClientTypedErrors(t *testing.T) {
	c := NewClient()
	ctx := context.Background()

	// Invalid platform → *ValidationError across the engine boundary.
	_, _, err := c.Best(ctx, Platform{}, testApps(0))
	var verr *ValidationError
	if !errors.As(err, &verr) {
		t.Fatalf("invalid platform returned %T (%v), want *ValidationError", err, err)
	}
	if verr.Field != "platform.processors" {
		t.Fatalf("field %q, want platform.processors", verr.Field)
	}

	// Unknown heuristic on a valid scenario → *HeuristicError.
	_, err = c.Schedule(ctx, Heuristic(99), TaihuLight(), testApps(0))
	var herr *HeuristicError
	if !errors.As(err, &herr) {
		t.Fatalf("unknown heuristic returned %T (%v), want *HeuristicError", err, err)
	}
	if herr.Heuristic != Heuristic(99) {
		t.Fatalf("heuristic %v recorded, want Heuristic(99)", herr.Heuristic)
	}

	// Nil/empty schedules → *ValidationError instead of panics.
	if _, err := CATPartition(nil, 20); !errors.As(err, &verr) || verr.Field != "schedule" {
		t.Fatalf("CATPartition(nil): %v", err)
	}
	if _, err := CATPartition(&Schedule{}, 20); !errors.As(err, &verr) || verr.Field != "schedule.assignments" {
		t.Fatalf("CATPartition(empty): %v", err)
	}
	if _, err := RoundProcessors(TaihuLight(), nil, nil); !errors.As(err, &verr) || verr.Field != "schedule" {
		t.Fatalf("RoundProcessors(nil): %v", err)
	}
	if _, err := RoundProcessors(TaihuLight(), nil, &Schedule{}); !errors.As(err, &verr) {
		t.Fatalf("RoundProcessors(empty): %v", err)
	}

	// ErrInfeasible is a sentinel: errors.Is through wrapping.
	if !errors.Is(fmt.Errorf("wrap: %w", ErrInfeasible), ErrInfeasible) {
		t.Fatal("ErrInfeasible does not survive wrapping")
	}
}

// TestEvaluateBatchStreams verifies ordering and bounded-window
// streaming over a scenario iterator.
func TestEvaluateBatchStreams(t *testing.T) {
	c := NewClient(WithWorkers(4))
	pl := TaihuLight()
	const n = 40
	scenarios := func(yield func(PortfolioScenario) bool) {
		for i := 0; i < n; i++ {
			if !yield(PortfolioScenario{Platform: pl, Apps: testApps(i), Seed: uint64(i)}) {
				return
			}
		}
	}
	var got []int
	err := c.EvaluateBatch(context.Background(), scenarios, func(br BatchResult) error {
		if br.Report == nil || br.Report.BestResult() == nil {
			t.Fatalf("scenario %d: no feasible result", br.Index)
		}
		got = append(got, br.Index)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("emitted %d reports, want %d", len(got), n)
	}
	for i, idx := range got {
		if idx != i {
			t.Fatalf("out-of-order emit: position %d got index %d", i, idx)
		}
	}
}

// TestEvaluateBatchCancellation cancels mid-batch and asserts the
// ctx.Err() contract: prompt return, no goroutine leaks, and a fully
// reusable client producing bit-identical results afterwards.
func TestEvaluateBatchCancellation(t *testing.T) {
	before := runtime.NumGoroutine()
	c := NewClient(WithWorkers(2))
	pl := TaihuLight()

	// Reference outcome from an independent client (fresh cache).
	ref, _, err := NewClient().Best(context.Background(), pl, testApps(1000))
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	scenarios := func(yield func(PortfolioScenario) bool) {
		for i := 0; ; i++ { // unbounded stream: only cancellation ends it
			if !yield(PortfolioScenario{Platform: pl, Apps: testApps(i), Seed: uint64(i)}) {
				return
			}
		}
	}
	emitted := 0
	err = c.EvaluateBatch(ctx, scenarios, func(br BatchResult) error {
		emitted++
		if emitted == 3 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled batch returned %v, want context.Canceled", err)
	}
	if emitted < 3 {
		t.Fatalf("emitted %d reports before cancel, want >= 3", emitted)
	}
	// The window bounds how many in-flight reports can still drain
	// after the cancel; anything beyond it would mean the stream kept
	// being pulled.
	if max := 3 + 2*c.Workers() + 1; emitted > max {
		t.Fatalf("emitted %d reports, want <= %d after cancelling at 3", emitted, max)
	}
	waitGoroutines(t, before)

	// The same client must still serve golden-identical results.
	got, _, err := c.Best(context.Background(), pl, testApps(1000))
	if err != nil {
		t.Fatal(err)
	}
	if got.Makespan != ref.Makespan {
		t.Fatalf("post-cancel Best %v != reference %v", got.Makespan, ref.Makespan)
	}
}

// TestEvaluateBatchEmitError stops the stream on the first emit failure
// and returns that error.
func TestEvaluateBatchEmitError(t *testing.T) {
	before := runtime.NumGoroutine()
	c := NewClient(WithWorkers(2))
	pl := TaihuLight()
	boom := errors.New("sink full")
	scenarios := func(yield func(PortfolioScenario) bool) {
		for i := 0; ; i++ {
			if !yield(PortfolioScenario{Platform: pl, Apps: testApps(i), Seed: uint64(i)}) {
				return
			}
		}
	}
	calls := 0
	err := c.EvaluateBatch(context.Background(), scenarios, func(BatchResult) error {
		calls++
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("emit error %v not returned (got %v)", boom, err)
	}
	if calls != 1 {
		t.Fatalf("emit called %d times after failing, want 1", calls)
	}
	waitGoroutines(t, before)
}

// TestSimulateOnlineCancellation cancels the DES event loop
// deterministically (the loop polls ctx.Err every few events) and
// asserts prompt ctx.Err() return plus bit-identical behavior on a
// subsequent uncancelled run.
func TestSimulateOnlineCancellation(t *testing.T) {
	before := runtime.NumGoroutine()
	c := NewClient(WithWorkers(2))
	mkScenario := func() OnlineScenario {
		factory, err := CycleJobs(testApps(0))
		if err != nil {
			t.Fatal(err)
		}
		arr, err := PoissonArrivals(0.002, 64, factory, NewRNG(9))
		if err != nil {
			t.Fatal(err)
		}
		pol, err := HeuristicRepartition(DominantMinRatio, 9)
		if err != nil {
			t.Fatal(err)
		}
		return OnlineScenario{Platform: TaihuLight(), Arrivals: arr, Policy: pol}
	}

	// Reference: full uncancelled run.
	ref, err := c.SimulateOnline(context.Background(), mkScenario())
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.Events) < 64 {
		t.Fatalf("reference run too short to cancel mid-way: %d events", len(ref.Events))
	}

	// Cancel after a handful of context polls — well inside the run.
	pctx := &pollCancelCtx{Context: context.Background(), after: 3}
	if _, err := c.SimulateOnline(pctx, mkScenario()); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled simulation returned %v, want context.Canceled", err)
	}
	waitGoroutines(t, before)

	// Rerun uncancelled on the same client: bit-identical event log.
	again, err := c.SimulateOnline(context.Background(), mkScenario())
	if err != nil {
		t.Fatal(err)
	}
	if again.Makespan != ref.Makespan || len(again.Events) != len(ref.Events) {
		t.Fatalf("post-cancel rerun diverged: makespan %v vs %v, %d vs %d events",
			again.Makespan, ref.Makespan, len(again.Events), len(ref.Events))
	}
	for i := range again.Events {
		if again.Events[i] != ref.Events[i] {
			t.Fatalf("event %d diverged after cancellation: %+v vs %+v", i, again.Events[i], ref.Events[i])
		}
	}
}

// TestBestCancellationPreCancelled covers the fast path: an
// already-cancelled context returns before any evaluation.
func TestBestCancellationPreCancelled(t *testing.T) {
	c := NewClient()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := c.Best(ctx, TaihuLight(), testApps(0)); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled Best returned %v", err)
	}
	// And a deadline in the past surfaces DeadlineExceeded.
	dctx, dcancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer dcancel()
	if _, _, err := c.Best(dctx, TaihuLight(), testApps(0)); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired deadline returned %v", err)
	}
	// The client is not poisoned: a live context works.
	if _, _, err := c.Best(context.Background(), TaihuLight(), testApps(0)); err != nil {
		t.Fatal(err)
	}
}

// TestDefaultClientMemoizes is the BestSchedule cache-thrash fix: the
// legacy shim must hit the shared default client's cache on repeat
// calls instead of rebuilding a transient engine.
func TestDefaultClientMemoizes(t *testing.T) {
	pl := TaihuLight()
	apps := testApps(4242)
	s1, _, err := BestSchedule(pl, apps, 1)
	if err != nil {
		t.Fatal(err)
	}
	missesAfterFirst := DefaultClient().Engine().CacheStats().Misses
	s2, rep, err := BestSchedule(pl, apps, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s1.Makespan != s2.Makespan {
		t.Fatalf("repeat BestSchedule diverged: %v vs %v", s1.Makespan, s2.Makespan)
	}
	if m := DefaultClient().Engine().CacheStats().Misses; m != missesAfterFirst {
		t.Fatalf("repeat BestSchedule recomputed: misses %d -> %d", missesAfterFirst, m)
	}
	for _, r := range rep.Results {
		if !r.FromCache {
			t.Fatalf("%v not served from the default client's cache", r.Heuristic)
		}
	}
	// SimulateOnline shim routes through the same shared client.
	factory, err := CycleJobs(apps)
	if err != nil {
		t.Fatal(err)
	}
	arr, err := BatchArrivals(0, 6, 6, factory)
	if err != nil {
		t.Fatal(err)
	}
	pol, err := NoRepartitionPolicy(DominantMinRatio, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SimulateOnline(OnlineScenario{Platform: pl, Arrivals: arr, Policy: pol}); err != nil {
		t.Fatal(err)
	}
}

// TestClientEngineSharing wires the client's engine into an online
// portfolio policy, the documented path for sharing one worker pool.
func TestClientEngineSharing(t *testing.T) {
	c := NewClient(WithWorkers(2))
	factory, err := CycleJobs(testApps(7))
	if err != nil {
		t.Fatal(err)
	}
	arr, err := BatchArrivals(0, 4, 4, factory)
	if err != nil {
		t.Fatal(err)
	}
	sc := OnlineScenario{
		Platform: TaihuLight(),
		Arrivals: arr,
		Policy:   des.NewPortfolioPolicy(c.Engine(), 0, 3),
	}
	res, err := c.SimulateOnline(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan <= 0 {
		t.Fatalf("empty result: %+v", res)
	}
}

// TestWithSelector: an armed client serves the ledger's confident
// prediction through Best — a single-heuristic report, bit-identical
// to that heuristic's lane in the full race — while an unarmed client
// falls back to the full race on every Select.
func TestWithSelector(t *testing.T) {
	ctx := context.Background()
	pl := TaihuLight()
	apps := testApps(0)

	// Ground truth: the full race on a plain client.
	plain := NewClient(WithWorkers(2), WithSeed(5))
	full, err := plain.Evaluate(ctx, PortfolioScenario{Platform: pl, Apps: apps, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	winner := full.Results[full.Best]

	// Hand-train the scenario's bucket so the race winner is the
	// confident call.
	bucket := ExtractFeatures(pl, apps).Bucket()
	led := NewSelectorLedger()
	for range [3]struct{}{} {
		if err := led.Ingest(selector.RaceRecord{
			Bucket: bucket, Heuristic: winner.Heuristic.String(), Win: true, Margin: 1,
		}); err != nil {
			t.Fatal(err)
		}
	}

	armed := NewClient(WithWorkers(2), WithSeed(5), WithSelector(led, SelectorThresholds{}))
	s, rep, err := armed.Best(ctx, pl, apps)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 1 || rep.Results[0].Heuristic != winner.Heuristic {
		t.Fatalf("armed Best served %d results (first %v), want only %v",
			len(rep.Results), rep.Results[0].Heuristic, winner.Heuristic)
	}
	if s.Makespan != winner.Schedule.Makespan {
		t.Fatalf("served makespan %v != full-race lane %v", s.Makespan, winner.Schedule.Makespan)
	}
	for i := range winner.Schedule.Assignments {
		if s.Assignments[i] != winner.Schedule.Assignments[i] {
			t.Fatalf("assignment %d differs from the full-race lane", i)
		}
	}

	// Unarmed Select: empty ledger, full race, explicit reason.
	d, err := plain.Select(ctx, PortfolioScenario{Platform: pl, Apps: apps, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if d.Predicted || d.FallbackReason != "no-evidence" {
		t.Fatalf("unarmed Select = %+v, want no-evidence fallback", d)
	}
	if len(d.Report.Results) != len(full.Results) {
		t.Fatalf("fallback raced %d heuristics, want %d", len(d.Report.Results), len(full.Results))
	}
}
