package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunTables(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-tables"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Table 1", "Table 2", "conjugate gradients", "FT"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("tables missing %q", want)
		}
	}
}

func TestRunSingleFigure(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-fig", "10", "-reps", "1", "-out", dir}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "fig10") {
		t.Fatalf("figure header missing:\n%s", out.String())
	}
	raw, err := os.ReadFile(filepath.Join(dir, "fig10.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(raw), "series,x,mean") {
		t.Fatal("CSV header missing")
	}
}

func TestRunExtension(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-ext", "4", "-reps", "1", "-out", dir}, &out); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "ext4.csv")); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "whole-processor") {
		t.Fatalf("extension title missing:\n%s", out.String())
	}
}

func TestRunRawAndPlot(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-fig", "10", "-reps", "1", "-raw", "-plot", "-out", dir}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "|") {
		t.Fatal("plot frame missing")
	}
}

func TestRunNothingToDo(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), nil, &out); err == nil {
		t.Fatal("no-op invocation accepted")
	}
}

func TestRunUnknownFigure(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-fig", "99", "-out", dir}, &out); err == nil {
		t.Fatal("figure 99 accepted")
	}
}
