// Command experiments regenerates the paper's evaluation: Figures 1–18
// and Tables 1–2 of Aupy et al., "Co-scheduling algorithms for
// cache-partitioned systems".
//
// Usage:
//
//	experiments -fig 5            # regenerate Figure 5 (CSV + ASCII)
//	experiments -all              # regenerate everything
//	experiments -tables           # print Tables 1 and 2
//	experiments -fig 3 -raw       # skip the paper's normalization
//	experiments -reps 10 -out dir # fewer replicates, custom output dir
//
// Each figure is written to <out>/figN.csv with the raw summaries and
// printed as an ASCII table (normalized as in the paper unless -raw).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"time"

	repro "repro"
	"repro/internal/experiments"
	"repro/internal/obs"
)

func main() {
	// Ctrl-C cancels the context; the figure loop stops between
	// figures instead of grinding through the whole -all sweep.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	go func() {
		// After the first signal cancels ctx, restore the default
		// disposition so a second Ctrl-C force-kills even if some path
		// cannot observe the cancellation (e.g. blocked on stdin).
		<-ctx.Done()
		stop()
	}()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, stdout io.Writer) (err error) {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		debugAddr = fs.String("debug-addr", "", `serve /metrics, /debug/pprof/* and /debug/vars on this address (e.g. "localhost:6060")`)
		fig       = fs.Int("fig", 0, "figure number to regenerate (1-18)")
		ext       = fs.Int("ext", 0, "extension experiment to run (1-5, studies beyond the paper)")
		all       = fs.Bool("all", false, "regenerate every figure")
		allExt    = fs.Bool("all-ext", false, "run every extension experiment")
		tables    = fs.Bool("tables", false, "print Tables 1 and 2")
		reps      = fs.Int("reps", 50, "replicates per configuration (paper: 50)")
		seed      = fs.Uint64("seed", 0x5EED, "master seed")
		out       = fs.String("out", "results", "output directory for CSV files")
		raw       = fs.Bool("raw", false, "print raw makespans instead of the paper's normalization")
		plot      = fs.Bool("plot", false, "also draw an ASCII plot per figure")
		workers   = fs.Int("workers", 0, "portfolio worker-pool size (0 = GOMAXPROCS)")
	)
	prof := obs.ProfileFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := prof.Start(); err != nil {
		return err
	}
	defer func() {
		if e := prof.Stop(); err == nil {
			err = e
		}
	}()

	if *tables {
		if err := experiments.WriteTable1(stdout); err != nil {
			return err
		}
		fmt.Fprintln(stdout)
		if err := experiments.WriteTable2(stdout); err != nil {
			return err
		}
	}

	var reg *obs.Registry
	var ds *obs.DebugServer
	if *debugAddr != "" {
		reg = obs.NewRegistry()
		ds, err = obs.ServeDebug(*debugAddr, reg)
		if err != nil {
			return err
		}
		defer ds.Close() // error paths only; Close is idempotent
		fmt.Fprintf(os.Stderr, "experiments: debug listener on http://%s\n", ds.Addr())
	}

	// One v2 client for the whole invocation: every figure shares its
	// worker pool (the sweeps consume the underlying engine directly).
	// No cache — sweep cells never repeat a workload, so memoizing
	// would only grow memory for zero hits.
	client := repro.NewClient(repro.WithWorkers(*workers), repro.WithCache(false), repro.WithMetrics(reg))
	cfg := experiments.Config{Replicates: *reps, Seed: *seed, Engine: client.Engine()}
	type job struct {
		n     int
		isExt bool
		reg   map[int]func(experiments.Config) (*experiments.Figure, error)
	}
	var jobs []job
	switch {
	case *all:
		var ns []int
		for n := range experiments.Registry {
			ns = append(ns, n)
		}
		sort.Ints(ns)
		for _, n := range ns {
			jobs = append(jobs, job{n, false, experiments.Registry})
		}
	case *fig != 0:
		jobs = append(jobs, job{*fig, false, experiments.Registry})
	}
	switch {
	case *allExt:
		var ns []int
		for n := range experiments.Extensions {
			ns = append(ns, n)
		}
		sort.Ints(ns)
		for _, n := range ns {
			jobs = append(jobs, job{n, true, experiments.Extensions})
		}
	case *ext != 0:
		jobs = append(jobs, job{*ext, true, experiments.Extensions})
	}
	if len(jobs) == 0 {
		if *tables {
			return nil
		}
		return fmt.Errorf("nothing to do; pass -fig N, -ext N, -all, -all-ext or -tables")
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}
	for _, j := range jobs {
		if err := ctx.Err(); err != nil {
			return err
		}
		n := j.n
		drv, ok := j.reg[n]
		if !ok {
			return fmt.Errorf("unknown experiment %d", n)
		}
		start := time.Now()
		f, err := drv(cfg)
		if err != nil {
			return err
		}
		csvPath := filepath.Join(*out, fmt.Sprintf("%s.csv", f.ID))
		fh, err := os.Create(csvPath)
		if err != nil {
			return err
		}
		if err := f.WriteCSV(fh); err != nil {
			return err
		}
		if err := fh.Close(); err != nil {
			return err
		}

		display := f
		if base := experiments.NormalizationBase(n); !j.isExt && base != "" && !*raw {
			if display, err = f.Normalized(base); err != nil {
				return err
			}
		}
		if err := display.RenderTable(stdout); err != nil {
			return err
		}
		if *plot {
			if err := display.RenderASCIIPlot(stdout, 72, 20); err != nil {
				return err
			}
		}
		fmt.Fprintf(stdout, "wrote %s (%.1fs)\n\n", csvPath, time.Since(start).Seconds())
	}
	// Drain-then-exit: all figures are written; let any in-flight
	// scrape of the final metric state complete before the listener
	// disappears with the process.
	return ds.Close()
}
