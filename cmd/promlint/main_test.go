package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const cleanExposition = `# HELP demo_total A counter
# TYPE demo_total counter
demo_total 3
`

func TestCleanFilePasses(t *testing.T) {
	path := filepath.Join(t.TempDir(), "clean.prom")
	if err := os.WriteFile(path, []byte(cleanExposition), 0o644); err != nil {
		t.Fatal(err)
	}
	var errOut bytes.Buffer
	if code := run([]string{path}, &errOut); code != 0 {
		t.Fatalf("clean exposition exited %d: %s", code, errOut.String())
	}
}

func TestViolationsFail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.prom")
	if err := os.WriteFile(path, []byte("bad{metric 1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var errOut bytes.Buffer
	if code := run([]string{path}, &errOut); code != 1 {
		t.Fatalf("bad exposition exited %d, want 1", code)
	}
	if !strings.Contains(errOut.String(), "unparseable") {
		t.Errorf("violation not reported: %s", errOut.String())
	}
}

func TestUsageAndMissingFile(t *testing.T) {
	var errOut bytes.Buffer
	if code := run([]string{"a", "b"}, &errOut); code != 2 {
		t.Errorf("two args exited %d, want 2", code)
	}
	if code := run([]string{filepath.Join(t.TempDir(), "absent.prom")}, &errOut); code != 2 {
		t.Errorf("absent file exited %d, want 2", code)
	}
}
