// Command promlint validates a Prometheus text exposition (version
// 0.0.4) against the checks in internal/obs: metric and label name
// grammar, TYPE/sample ordering, histogram completeness (+Inf bucket,
// ascending le, cumulative monotonicity, _count consistency) and value
// parseability. It is the CI gate for the /metrics output of the
// instrumented binaries.
//
// Usage:
//
//	promlint file.prom
//	dessim ... -metrics - | promlint
//
// Exit status is 0 when the exposition is clean, 1 when any check
// fails (one line per violation on stderr), 2 on usage or I/O errors.
package main

import (
	"fmt"
	"io"
	"os"

	"repro/internal/obs"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stderr))
}

func run(args []string, errOut io.Writer) int {
	if len(args) > 1 {
		fmt.Fprintln(errOut, "usage: promlint [file]")
		return 2
	}
	var r io.Reader = os.Stdin
	name := "<stdin>"
	if len(args) == 1 && args[0] != "-" {
		f, err := os.Open(args[0])
		if err != nil {
			fmt.Fprintln(errOut, "promlint:", err)
			return 2
		}
		defer f.Close()
		r, name = f, args[0]
	}
	errs := obs.LintProm(r)
	for _, e := range errs {
		fmt.Fprintf(errOut, "promlint: %s: %v\n", name, e)
	}
	if len(errs) > 0 {
		return 1
	}
	return 0
}
