// Command benchgate is the statistical benchmark gate: it parses `go
// test -bench` output (repeated runs recommended, e.g. -count=10),
// aggregates each benchmark into median ± MAD, compares against a
// committed JSON baseline with per-metric tolerances, writes a
// BENCH_*.json trajectory artifact, and exits non-zero on significant
// regressions or on baseline benchmarks missing from the run.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem -count 10 ./... | benchgate [flags] [bench.txt ...]
//
// With no file arguments, bench output is read from stdin. A change is
// flagged only when it exceeds both the metric's relative tolerance
// and the MAD-derived noise window, so the gate follows the
// repeated-measurement discipline of the source paper rather than
// diffing single noisy runs. Baseline benchmarks missing from the new
// run fail the gate: a vanished benchmark is a bypass, not a pass.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"runtime"

	"repro/internal/benchgate"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchgate", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		baselinePath = fs.String("baseline", "benchmarks/baseline.json", "baseline JSON path")
		trajectory   = fs.String("trajectory", "", "trajectory artifact to write (e.g. BENCH_4.json)")
		label        = fs.String("label", "", "label recorded in the trajectory")
		update       = fs.Bool("update", false, "rewrite the baseline from this run")
		tolNs        = fs.Float64("tol-ns", 30, "ns/op tolerance, percent (< 0 reports but never gates)")
		tolB         = fs.Float64("tol-b", 10, "B/op tolerance, percent (< 0 reports but never gates)")
		tolAllocs    = fs.Float64("tol-allocs", 5, "allocs/op tolerance, percent (< 0 reports but never gates)")
		madK         = fs.Float64("mad-k", 3, "noise window MAD multiplier")
		minSpeedup   = fs.Float64("min-speedup", 0, "required serial/parallel speedup (0 disables)")
		speedupSer   = fs.String("speedup-serial", `^BenchmarkPortfolioSweep/workers=1$`, "serial benchmark regex for the speedup gate")
		speedupPar   = fs.String("speedup-parallel", `^BenchmarkPortfolioSweep/workers=([2-9]|[1-9][0-9]+)$`, "parallel benchmark regex for the speedup gate")
		speedupCPUs  = fs.Int("speedup-min-cpus", 4, "skip the speedup gate below this CPU count")
		minDelta     = fs.Float64("min-delta-speedup", 0, "required full-replan/delta speedup (0 disables)")
		deltaFull    = fs.String("delta-full", `^BenchmarkDESPortfolioHighRate/full$`, "full-replan benchmark regex for the delta gate")
		deltaFast    = fs.String("delta-fast", `^BenchmarkDESPortfolioHighRate/delta$`, "delta-rescheduling benchmark regex for the delta gate")
		minSel       = fs.Float64("min-selector-speedup", 0, "required full-race/selector-shortcut speedup (0 disables)")
		selFull      = fs.String("selector-full", `^BenchmarkSelectorSweep/mode=full$`, "full-race benchmark regex for the selector gate")
		selFast      = fs.String("selector-fast", `^BenchmarkSelectorSweep/mode=selector$`, "selector-shortcut benchmark regex for the selector gate")
		only         = fs.String("only", "", "gate only benchmarks matching this regex (applied to run and baseline)")
		skip         = fs.String("skip", "", "exclude benchmarks matching this regex (applied to run and baseline)")
		quiet        = fs.Bool("quiet", false, "only print failures")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	ms, ctx, err := parseInputs(fs.Args(), stdin)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	if len(ms) == 0 {
		fmt.Fprintln(stderr, "benchgate: no benchmark lines in input")
		return 2
	}
	cur := benchgate.Aggregate(ms)
	keep, err := nameFilter(*only, *skip)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	for name := range cur {
		if !keep(name) {
			delete(cur, name)
		}
	}
	if len(cur) == 0 {
		fmt.Fprintln(stderr, "benchgate: -only/-skip filtered out every benchmark in the input")
		return 2
	}

	if *update {
		b := benchgate.NewBaseline(cur, ctx)
		if err := b.Save(*baselinePath); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		fmt.Fprintf(stdout, "benchgate: baseline %s updated (%d benchmarks)\n", *baselinePath, len(cur))
		return 0
	}

	base, err := benchgate.LoadBaseline(*baselinePath)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	// The filter applies to both sides, so baseline entries outside the
	// selection are out of scope rather than "missing from the run".
	for name := range base.Benchmarks {
		if !keep(name) {
			delete(base.Benchmarks, name)
		}
	}
	tol := benchgate.Tolerances{NsPct: *tolNs, BPct: *tolB, AllocsPct: *tolAllocs, MADK: *madK}
	rep := benchgate.Compare(base, cur, tol)
	for _, f := range rep.Findings {
		if *quiet && f.Verdict != benchgate.VerdictRegression && f.Verdict != benchgate.VerdictMissing {
			continue
		}
		fmt.Fprintln(stdout, f)
	}

	fail := !rep.Pass()
	if *minSpeedup > 0 {
		if cpus := runtime.NumCPU(); cpus < *speedupCPUs {
			fmt.Fprintf(stdout, "benchgate: %d CPUs < %d, skipping the %.2gx speedup gate\n", cpus, *speedupCPUs, *minSpeedup)
		} else {
			s, err := benchgate.Speedup(cur, *speedupSer, *speedupPar)
			if err != nil {
				fmt.Fprintln(stderr, err)
				return 2
			}
			fmt.Fprintf(stdout, "benchgate: portfolio speedup (serial / best parallel): %.3fx\n", s)
			if s < *minSpeedup {
				fmt.Fprintf(stderr, "benchgate: FAIL: speedup %.3fx below required %.2gx\n", s, *minSpeedup)
				fail = true
			}
		}
	}

	// The delta gate has no CPU floor: both arms run the engine race
	// serially (Build(1)), so the ratio measures replanning work alone
	// and is comparable on any machine.
	if *minDelta > 0 {
		s, err := benchgate.Speedup(cur, *deltaFull, *deltaFast)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		fmt.Fprintf(stdout, "benchgate: delta rescheduling speedup (full replan / delta): %.3fx\n", s)
		if s < *minDelta {
			fmt.Fprintf(stderr, "benchgate: FAIL: delta speedup %.3fx below required %.2gx\n", s, *minDelta)
			fail = true
		}
	}

	// Like the delta gate, both selector arms run at one worker, so the
	// ratio measures scheduling work saved by serving the predicted
	// winner instead of racing every heuristic.
	if *minSel > 0 {
		s, err := benchgate.Speedup(cur, *selFull, *selFast)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		fmt.Fprintf(stdout, "benchgate: learned-selection speedup (full race / selector): %.3fx\n", s)
		if s < *minSel {
			fmt.Fprintf(stderr, "benchgate: FAIL: selector speedup %.3fx below required %.2gx\n", s, *minSel)
			fail = true
		}
	}

	if *trajectory != "" {
		t := benchgate.NewTrajectory(*label, *baselinePath, ctx, cur, rep)
		t.Pass = !fail
		if err := t.Save(*trajectory); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		if !*quiet {
			fmt.Fprintf(stdout, "benchgate: trajectory written to %s\n", *trajectory)
		}
	}

	if fail {
		fmt.Fprintln(stderr, "benchgate: FAIL")
		return 1
	}
	fmt.Fprintf(stdout, "benchgate: OK (%d benchmarks gated)\n", len(base.Benchmarks))
	return 0
}

// nameFilter compiles the -only/-skip selection into a predicate over
// benchmark names. Empty patterns match everything / exclude nothing.
func nameFilter(only, skip string) (func(string) bool, error) {
	var onlyRe, skipRe *regexp.Regexp
	var err error
	if only != "" {
		if onlyRe, err = regexp.Compile(only); err != nil {
			return nil, fmt.Errorf("benchgate: -only: %w", err)
		}
	}
	if skip != "" {
		if skipRe, err = regexp.Compile(skip); err != nil {
			return nil, fmt.Errorf("benchgate: -skip: %w", err)
		}
	}
	return func(name string) bool {
		if onlyRe != nil && !onlyRe.MatchString(name) {
			return false
		}
		return skipRe == nil || !skipRe.MatchString(name)
	}, nil
}

// parseInputs reads bench output from the named files, or stdin when
// none are given, and concatenates the measurements. The context of
// the first file that carries one wins.
func parseInputs(paths []string, stdin io.Reader) ([]benchgate.Measurement, benchgate.Context, error) {
	if len(paths) == 0 {
		return benchgate.Parse(stdin)
	}
	var (
		all []benchgate.Measurement
		ctx benchgate.Context
	)
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			return nil, ctx, fmt.Errorf("benchgate: %w", err)
		}
		ms, c, err := benchgate.Parse(f)
		f.Close()
		if err != nil {
			return nil, ctx, fmt.Errorf("%s: %w", p, err)
		}
		all = append(all, ms...)
		if ctx == (benchgate.Context{}) {
			ctx = c
		}
	}
	return all, ctx, nil
}
