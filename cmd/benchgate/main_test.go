package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/benchgate"
)

// benchLog renders a fake -count=3 bench log for two benchmarks with
// the given ns/op and allocs/op centers (±1 ns jitter across runs).
func benchLog(sweepNs, desNs, allocs float64) string {
	var b strings.Builder
	b.WriteString("goos: linux\ngoarch: amd64\npkg: repro/internal/portfolio\ncpu: test\n")
	for i := 0; i < 3; i++ {
		j := float64(i)
		fmt.Fprintf(&b, "BenchmarkPortfolioSweep/workers=1-8\t 50\t %g ns/op\t 1000 B/op\t %g allocs/op\n", sweepNs+j, allocs)
		fmt.Fprintf(&b, "BenchmarkDESPortfolio-8\t 50\t %g ns/op\t 2000 B/op\t %g allocs/op\n", desNs+j, allocs)
	}
	b.WriteString("PASS\n")
	return b.String()
}

// gate runs the CLI with a baseline recorded from baseLog and input
// from curLog, returning the exit code and combined output.
func gate(t *testing.T, baseLog, curLog string, extraArgs ...string) (int, string) {
	t.Helper()
	dir := t.TempDir()
	baseline := filepath.Join(dir, "baseline.json")

	var out, errOut bytes.Buffer
	code := run([]string{"-baseline", baseline, "-update"}, strings.NewReader(baseLog), &out, &errOut)
	if code != 0 {
		t.Fatalf("baseline update failed (%d): %s%s", code, out.String(), errOut.String())
	}

	args := append([]string{"-baseline", baseline}, extraArgs...)
	out.Reset()
	errOut.Reset()
	code = run(args, strings.NewReader(curLog), &out, &errOut)
	return code, out.String() + errOut.String()
}

func TestGatePassesOnStableRun(t *testing.T) {
	base := benchLog(1000, 2000, 300)
	code, out := gate(t, base, benchLog(1010, 2020, 300))
	if code != 0 {
		t.Fatalf("stable run failed the gate (%d):\n%s", code, out)
	}
}

// TestGateFailsOnRegression is the acceptance check: a synthetic
// regressed input must make benchgate exit non-zero.
func TestGateFailsOnRegression(t *testing.T) {
	base := benchLog(1000, 2000, 300)
	cases := map[string]string{
		"timing regression":     benchLog(5000, 2000, 300),
		"allocation regression": benchLog(1000, 2000, 450),
	}
	for name, cur := range cases {
		t.Run(name, func(t *testing.T) {
			code, out := gate(t, base, cur)
			if code == 0 {
				t.Fatalf("regressed input passed the gate:\n%s", out)
			}
			if !strings.Contains(out, "regression") {
				t.Errorf("output does not name the regression:\n%s", out)
			}
		})
	}
}

func TestGateFailsOnMissingBenchmark(t *testing.T) {
	base := benchLog(1000, 2000, 300)
	// The DES benchmark vanishes from the new run (e.g. renamed): the
	// old text-diff gate silently passed this; benchgate must fail.
	only := "goos: linux\nBenchmarkPortfolioSweep/workers=1-8\t 50\t 1000 ns/op\t 1000 B/op\t 300 allocs/op\nPASS\n"
	code, out := gate(t, base, only)
	if code == 0 {
		t.Fatalf("run missing a baseline benchmark passed the gate:\n%s", out)
	}
	if !strings.Contains(out, "MISSING") {
		t.Errorf("output does not flag the missing benchmark:\n%s", out)
	}
}

func TestGateWritesTrajectory(t *testing.T) {
	dir := t.TempDir()
	traj := filepath.Join(dir, "BENCH_test.json")
	base := benchLog(1000, 2000, 300)
	code, out := gate(t, base, benchLog(1001, 2001, 300), "-trajectory", traj, "-label", "PR test")
	if code != 0 {
		t.Fatalf("gate failed (%d):\n%s", code, out)
	}
	got, err := benchgate.LoadTrajectory(traj)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Pass || got.Label != "PR test" || len(got.Benchmarks) != 2 {
		t.Errorf("trajectory artifact wrong: %+v", got)
	}
}

func TestGateRejectsMalformedInput(t *testing.T) {
	dir := t.TempDir()
	baseline := filepath.Join(dir, "baseline.json")
	var out, errOut bytes.Buffer
	if code := run([]string{"-baseline", baseline, "-update"},
		strings.NewReader(benchLog(1, 2, 3)), &out, &errOut); code != 0 {
		t.Fatal("baseline update failed")
	}
	code := run([]string{"-baseline", baseline},
		strings.NewReader("BenchmarkBroken\t xx\t 1 ns/op\n"), &out, &errOut)
	if code != 2 {
		t.Fatalf("malformed input exit code %d, want 2", code)
	}
}

// TestGateOnlySkipFilters covers the -only/-skip selection: a filtered
// baseline entry is out of scope (not MISSING), a filtered regression
// does not gate, and the selection applies to both sides symmetrically.
func TestGateOnlySkipFilters(t *testing.T) {
	base := benchLog(1000, 2000, 300)
	// The DES benchmark both regresses and vanishes in the cases below;
	// the filters must make the gate indifferent to it.
	sweepOnly := "goos: linux\nBenchmarkPortfolioSweep/workers=1-8\t 50\t 1000 ns/op\t 1000 B/op\t 300 allocs/op\nPASS\n"

	if code, out := gate(t, base, sweepOnly, "-only", "^BenchmarkPortfolioSweep"); code != 0 {
		t.Errorf("-only did not scope out the absent benchmark (%d):\n%s", code, out)
	}
	if code, out := gate(t, base, sweepOnly, "-skip", "^BenchmarkDES"); code != 0 {
		t.Errorf("-skip did not scope out the absent benchmark (%d):\n%s", code, out)
	}
	if code, out := gate(t, base, benchLog(1000, 9000, 300), "-skip", "^BenchmarkDES"); code != 0 {
		t.Errorf("-skip did not exclude the regressed benchmark (%d):\n%s", code, out)
	}
	// Without the filter the same inputs must still fail.
	if code, _ := gate(t, base, benchLog(1000, 9000, 300)); code == 0 {
		t.Error("regression passed without a filter")
	}
	if code, _ := gate(t, base, sweepOnly, "-only", "nomatch"); code != 2 {
		t.Error("empty selection should be a usage error")
	}
	if code, _ := gate(t, base, sweepOnly, "-only", "("); code != 2 {
		t.Error("invalid regex should be a usage error")
	}
}

func TestGateReadsFiles(t *testing.T) {
	dir := t.TempDir()
	baseline := filepath.Join(dir, "baseline.json")
	logPath := filepath.Join(dir, "bench.txt")
	if err := os.WriteFile(logPath, []byte(benchLog(1000, 2000, 300)), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errOut bytes.Buffer
	if code := run([]string{"-baseline", baseline, "-update", logPath}, strings.NewReader(""), &out, &errOut); code != 0 {
		t.Fatalf("update from file failed: %s%s", out.String(), errOut.String())
	}
	out.Reset()
	errOut.Reset()
	if code := run([]string{"-baseline", baseline, logPath}, strings.NewReader(""), &out, &errOut); code != 0 {
		t.Fatalf("compare from file failed: %s%s", out.String(), errOut.String())
	}
}

// TestGateNewBenchmarkInformational: a benchmark present in the run but
// absent from the baseline is reported (so reviewers notice the gap in
// coverage) without failing the gate — growing the suite must not
// require a simultaneous baseline rewrite.
func TestGateNewBenchmarkInformational(t *testing.T) {
	base := benchLog(1000, 2000, 300)
	cur := benchLog(1000, 2000, 300) +
		"BenchmarkSelectorSweep/mode=selector-8\t 50\t 500 ns/op\t 100 B/op\t 10 allocs/op\n"
	code, out := gate(t, base, cur)
	if code != 0 {
		t.Fatalf("run with a new benchmark failed the gate (%d):\n%s", code, out)
	}
	if !strings.Contains(out, "BenchmarkSelectorSweep/mode=selector") || !strings.Contains(out, "new") {
		t.Errorf("output does not report the new benchmark informationally:\n%s", out)
	}
}

// selectorLog renders a bench log carrying just the two selector arms
// with the given ns/op centers.
func selectorLog(fullNs, selNs float64) string {
	var b strings.Builder
	b.WriteString("goos: linux\ngoarch: amd64\npkg: repro/internal/portfolio\ncpu: test\n")
	for i := 0; i < 3; i++ {
		j := float64(i)
		fmt.Fprintf(&b, "BenchmarkSelectorSweep/mode=full-8\t 50\t %g ns/op\t 1000 B/op\t 10 allocs/op\n", fullNs+j)
		fmt.Fprintf(&b, "BenchmarkSelectorSweep/mode=selector-8\t 50\t %g ns/op\t 100 B/op\t 10 allocs/op\n", selNs+j)
	}
	b.WriteString("PASS\n")
	return b.String()
}

// TestSelectorSpeedupGate: -min-selector-speedup gates the full-race /
// selector-shortcut ratio exactly like the delta gate.
func TestSelectorSpeedupGate(t *testing.T) {
	base := selectorLog(5000, 1000)
	if code, out := gate(t, base, selectorLog(5000, 1000), "-min-selector-speedup", "3"); code != 0 {
		t.Fatalf("5x selector speedup failed a 3x gate (%d):\n%s", code, out)
	}
	code, out := gate(t, base, selectorLog(5000, 4000), "-min-selector-speedup", "3")
	if code == 0 {
		t.Fatalf("1.25x selector speedup passed a 3x gate:\n%s", out)
	}
	if !strings.Contains(out, "selector speedup") {
		t.Errorf("failure output does not name the selector gate:\n%s", out)
	}
}
