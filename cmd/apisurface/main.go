// Command apisurface extracts the exported API surface of a package in
// this module as a sorted, canonical text listing — one line per
// constant, variable, function, type and method — using go/types, so
// the listing reflects the type checker's view (resolved aliases,
// promoted methods, exact signatures) rather than a syntactic scrape.
//
// The checked-in golden api/v2.txt records the public surface of the
// root repro package; CI regenerates the listing and fails on any
// difference, so every surface change is an explicit, reviewed diff of
// that file.
//
// Usage:
//
//	apisurface                     # print the surface of package repro
//	apisurface -pkg repro/internal/des
//	apisurface -write api/v2.txt   # (re)write the golden
//	apisurface -check api/v2.txt   # exit 1 on any surface drift
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "apisurface:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("apisurface", flag.ContinueOnError)
	var (
		pkgPath = fs.String("pkg", "repro", "import path of the package to describe (must live in this module)")
		write   = fs.String("write", "", "write the surface listing to this file")
		check   = fs.String("check", "", "compare the surface against this golden file; non-zero exit on drift")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *write != "" && *check != "" {
		return fmt.Errorf("-write and -check are mutually exclusive")
	}

	modRoot, modPath, err := findModule()
	if err != nil {
		return err
	}
	surface, err := Surface(modRoot, modPath, *pkgPath)
	if err != nil {
		return err
	}
	text := strings.Join(surface, "\n") + "\n"

	switch {
	case *write != "":
		return os.WriteFile(*write, []byte(text), 0o644)
	case *check != "":
		want, err := os.ReadFile(*check)
		if err != nil {
			return err
		}
		if diff := diffLines(strings.Split(strings.TrimRight(string(want), "\n"), "\n"), surface); len(diff) > 0 {
			for _, d := range diff {
				fmt.Fprintln(out, d)
			}
			return fmt.Errorf("API surface of %s drifted from %s (run `go run ./cmd/apisurface -write %s` and review the diff)", *pkgPath, *check, *check)
		}
		fmt.Fprintf(out, "API surface of %s matches %s (%d entries)\n", *pkgPath, *check, len(surface))
		return nil
	default:
		_, err := io.WriteString(out, text)
		return err
	}
}

// findModule walks up from the working directory to the enclosing
// go.mod and returns the module root directory and module path.
func findModule() (root, path string, err error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("no module line in %s/go.mod", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("no go.mod above the working directory")
		}
		dir = parent
	}
}

// Surface type-checks the package at importPath inside the module and
// returns its exported surface as sorted canonical lines.
func Surface(modRoot, modPath, importPath string) ([]string, error) {
	imp := newModImporter(modRoot, modPath)
	pkg, err := imp.ImportFrom(importPath, "", 0)
	if err != nil {
		return nil, err
	}
	return surfaceLines(pkg), nil
}

// modImporter type-checks module-local packages from source and
// delegates everything else (the standard library) to the compiler's
// source importer. All packages share one FileSet and one memo, so
// diamond imports resolve to identical *types.Package values.
type modImporter struct {
	fset    *token.FileSet
	modRoot string
	modPath string
	pkgs    map[string]*types.Package
	std     types.ImporterFrom
}

func newModImporter(modRoot, modPath string) *modImporter {
	fset := token.NewFileSet()
	return &modImporter{
		fset:    fset,
		modRoot: modRoot,
		modPath: modPath,
		pkgs:    make(map[string]*types.Package),
		std:     importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
	}
}

func (m *modImporter) Import(path string) (*types.Package, error) {
	return m.ImportFrom(path, "", 0)
}

func (m *modImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if pkg, ok := m.pkgs[path]; ok {
		return pkg, nil
	}
	rel, inModule := strings.CutPrefix(path, m.modPath)
	if !inModule || (rel != "" && !strings.HasPrefix(rel, "/")) {
		return m.std.ImportFrom(path, dir, mode)
	}
	pkgDir := filepath.Join(m.modRoot, filepath.FromSlash(strings.TrimPrefix(rel, "/")))
	pkg, err := m.checkDir(path, pkgDir)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", path, err)
	}
	m.pkgs[path] = pkg
	return pkg, nil
}

// checkDir parses every non-test Go file of the directory and runs the
// type checker over it, resolving imports through m (so module-internal
// dependencies are checked recursively from source).
func (m *modImporter) checkDir(path, dir string) (*types.Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(m.fset, filepath.Join(dir, name), nil, parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no buildable Go files in %s", dir)
	}
	cfg := types.Config{Importer: m}
	return cfg.Check(path, m.fset, files, nil)
}

// surfaceLines renders the exported surface of the type-checked
// package. Named types contribute one "type" line (kind only — their
// fields are implementation detail unless promoted into methods) plus
// one "method" line per exported method in the pointer method set;
// aliases show their right-hand side, which is where the facade's
// internal re-exports become visible and reviewable.
func surfaceLines(pkg *types.Package) []string {
	qual := types.RelativeTo(pkg)
	var lines []string
	scope := pkg.Scope()
	for _, name := range scope.Names() { // Names() is sorted
		obj := scope.Lookup(name)
		if !obj.Exported() {
			continue
		}
		switch o := obj.(type) {
		case *types.Const:
			lines = append(lines, fmt.Sprintf("const %s %s", name, types.TypeString(o.Type(), qual)))
		case *types.Var:
			lines = append(lines, fmt.Sprintf("var %s %s", name, types.TypeString(o.Type(), qual)))
		case *types.Func:
			lines = append(lines, "func "+name+signature(o.Type().(*types.Signature), qual))
		case *types.TypeName:
			if o.IsAlias() {
				// Unalias, or materialized aliases (gotypesalias=1) would
				// print their own facade name instead of the right-hand
				// side that actually identifies the re-export.
				lines = append(lines, fmt.Sprintf("type %s = %s", name, types.TypeString(types.Unalias(o.Type()), qual)))
				continue
			}
			named, ok := o.Type().(*types.Named)
			if !ok { // e.g. a defined basic type edge case
				lines = append(lines, fmt.Sprintf("type %s %s", name, types.TypeString(o.Type().Underlying(), qual)))
				continue
			}
			lines = append(lines, fmt.Sprintf("type %s %s", name, kindOf(named.Underlying())))
			lines = append(lines, methodLines(name, named, qual)...)
		}
	}
	return lines
}

// methodLines lists the exported methods reachable from *T (the
// superset of T's), sorted by name, each with its receiver spelled the
// way the method set delivers it.
func methodLines(name string, named *types.Named, qual types.Qualifier) []string {
	ms := types.NewMethodSet(types.NewPointer(named))
	var lines []string
	for i := 0; i < ms.Len(); i++ {
		fn, ok := ms.At(i).Obj().(*types.Func)
		if !ok || !fn.Exported() {
			continue
		}
		sig := fn.Type().(*types.Signature)
		recv := name
		if _, isPtr := sig.Recv().Type().(*types.Pointer); isPtr {
			recv = "*" + name
		}
		lines = append(lines, fmt.Sprintf("method (%s) %s%s", recv, fn.Name(), signature(sig, qual)))
	}
	sort.Strings(lines)
	return lines
}

// signature renders a function/method signature without the leading
// "func" keyword and without the receiver.
func signature(sig *types.Signature, qual types.Qualifier) string {
	noRecv := types.NewSignatureType(nil, nil, nil, sig.Params(), sig.Results(), sig.Variadic())
	return strings.TrimPrefix(types.TypeString(noRecv, qual), "func")
}

// kindOf names the underlying kind of a defined type: the stable part
// of its identity reviewers care about at the surface level.
func kindOf(u types.Type) string {
	switch u.(type) {
	case *types.Struct:
		return "struct"
	case *types.Interface:
		return "interface"
	case *types.Map:
		return "map"
	case *types.Slice:
		return "slice"
	case *types.Chan:
		return "chan"
	case *types.Signature:
		return "func"
	default:
		return types.TypeString(u, nil)
	}
}

// diffLines reports a minimal human-readable diff: lines only in want
// (deleted) and lines only in got (added), in listing order.
func diffLines(want, got []string) []string {
	inWant := make(map[string]bool, len(want))
	for _, l := range want {
		inWant[l] = true
	}
	inGot := make(map[string]bool, len(got))
	for _, l := range got {
		inGot[l] = true
	}
	var diff []string
	for _, l := range want {
		if !inGot[l] {
			diff = append(diff, "- "+l)
		}
	}
	for _, l := range got {
		if !inWant[l] {
			diff = append(diff, "+ "+l)
		}
	}
	return diff
}
