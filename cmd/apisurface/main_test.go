package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestGoldenMatchesFacade is the API-surface gate: the checked-in
// api/v2.txt must equal the surface the type checker extracts from the
// root package right now. A failure means the public API changed
// without updating (and thereby reviewing) the golden.
func TestGoldenMatchesFacade(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-check", filepath.Join("..", "..", "api", "v2.txt")}, &out); err != nil {
		t.Fatalf("surface drifted:\n%s\n%v", out.String(), err)
	}
	if !strings.Contains(out.String(), "matches") {
		t.Fatalf("unexpected check output: %s", out.String())
	}
}

// TestWriteCheckRoundTrip writes a fresh golden and immediately checks
// against it; the pair must agree byte-for-byte.
func TestWriteCheckRoundTrip(t *testing.T) {
	golden := filepath.Join(t.TempDir(), "surface.txt")
	if err := run([]string{"-write", golden}, new(bytes.Buffer)); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 || !strings.HasSuffix(string(data), "\n") {
		t.Fatalf("golden empty or missing trailing newline (%d bytes)", len(data))
	}
	if err := run([]string{"-check", golden}, new(bytes.Buffer)); err != nil {
		t.Fatal(err)
	}
}

// TestCheckDetectsDrift corrupts a golden and expects the check to fail
// with a line-level diff.
func TestCheckDetectsDrift(t *testing.T) {
	golden := filepath.Join(t.TempDir(), "surface.txt")
	if err := run([]string{"-write", golden}, new(bytes.Buffer)); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	tampered := strings.Replace(string(data), "func NewClient", "func NewClientX", 1)
	if err := os.WriteFile(golden, []byte(tampered), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"-check", golden}, &out); err == nil {
		t.Fatal("tampered golden passed the check")
	}
	if !strings.Contains(out.String(), "- func NewClientX") || !strings.Contains(out.String(), "+ func NewClient") {
		t.Fatalf("diff missing the drifted lines:\n%s", out.String())
	}
}

// TestSurfaceInternalPackage exercises the tool on an internal package:
// the module importer must resolve module-local imports from source.
func TestSurfaceInternalPackage(t *testing.T) {
	modRoot, modPath, err := findModule()
	if err != nil {
		t.Fatal(err)
	}
	lines, err := Surface(modRoot, modPath, modPath+"/internal/sched")
	if err != nil {
		t.Fatal(err)
	}
	var haveHeuristic, haveErr bool
	for _, l := range lines {
		if l == "type Heuristic int" {
			haveHeuristic = true
		}
		if strings.HasPrefix(l, "type HeuristicError struct") {
			haveErr = true
		}
	}
	if !haveHeuristic || !haveErr {
		t.Fatalf("expected sched surface entries missing:\n%s", strings.Join(lines, "\n"))
	}
}

// TestFlagConflict rejects -write together with -check.
func TestFlagConflict(t *testing.T) {
	if err := run([]string{"-write", "a", "-check", "b"}, new(bytes.Buffer)); err == nil {
		t.Fatal("conflicting flags accepted")
	}
}
