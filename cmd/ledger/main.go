// Command ledger trains and inspects the learned-selection win-rate
// ledger (internal/selector): the versioned JSON artifact a selector
// policy predicts winning heuristics from.
//
// Usage:
//
//	ledger train [-families LIST] [-seeds N] [-seed-start K] [-workers N] [-out FILE]
//	ledger train -telemetry races.ndjson [-telemetry more.ndjson] [-out FILE]
//	ledger inspect [-in FILE] [-v]
//
// train without -telemetry races the full extended heuristic portfolio
// over seeded genscen instances — the same deterministic scenario
// families the conform harness replays — and folds every race outcome
// into the ledger. With -telemetry it instead ingests NDJSON
// win/loss/margin records as produced by cosched -telemetry, so
// production traffic trains the same artifact as synthetic sweeps.
// Either way the result is merged into an existing -out file when one
// is present (training accumulates across runs; use -no-merge for a
// fresh ledger) and written atomically.
//
// inspect prints per-bucket evidence — races, wins, win rates, median
// margins — and each bucket's current prediction under the default
// confidence thresholds.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"text/tabwriter"

	"repro/internal/genscen"
	"repro/internal/portfolio"
	"repro/internal/sched"
	"repro/internal/selector"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ledger:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, out io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: ledger {train|inspect} [flags]")
	}
	switch args[0] {
	case "train":
		return runTrain(ctx, args[1:], out)
	case "inspect":
		return runInspect(args[1:], out)
	default:
		return fmt.Errorf("unknown subcommand %q (want train or inspect)", args[0])
	}
}

// stringList collects a repeatable -telemetry flag.
type stringList []string

func (s *stringList) String() string { return fmt.Sprint([]string(*s)) }
func (s *stringList) Set(v string) error {
	*s = append(*s, v)
	return nil
}

func runTrain(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("ledger train", flag.ContinueOnError)
	var telemetry stringList
	var (
		families  = fs.String("families", "", "comma-separated genscen families to sweep (default: all)")
		seeds     = fs.Int("seeds", 100, "seeds per family")
		seedStart = fs.Int("seed-start", 1, "first seed of the sweep")
		workers   = fs.Int("workers", 0, "portfolio worker pool (0 = GOMAXPROCS); training is worker-count invariant")
		outPath   = fs.String("out", "runs/ledger.json", "ledger file to write (atomically)")
		noMerge   = fs.Bool("no-merge", false, "start from an empty ledger instead of merging into an existing -out file")
	)
	fs.Var(&telemetry, "telemetry", "ingest this NDJSON race-record file instead of sweeping (repeatable)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	l := selector.New()
	if !*noMerge {
		prev, err := selector.LoadFile(*outPath)
		switch {
		case err == nil:
			l = prev
		case os.IsNotExist(err):
			// First run: nothing to merge.
		default:
			return err
		}
	}
	before := l.Races()

	if len(telemetry) > 0 {
		for _, path := range telemetry {
			if err := ingestTelemetry(l, path); err != nil {
				return err
			}
		}
	} else if err := sweep(ctx, l, *families, *seedStart, *seeds, *workers); err != nil {
		return err
	}

	if err := l.SaveFile(*outPath); err != nil {
		return err
	}
	fmt.Fprintf(out, "ledger: %s: %d buckets, %d races (+%d), fingerprint %s\n",
		*outPath, len(l.Buckets()), l.Races(), l.Races()-before, l.Fingerprint())
	return nil
}

// sweep races the full extended portfolio over every (family, seed)
// genscen instance and folds the outcomes into l. Selection evidence is
// a pure function of the sweep parameters: the instances are seeded
// generators and the races are worker-count invariant.
func sweep(ctx context.Context, l *selector.Ledger, families string, seedStart, seeds, workers int) error {
	fams, err := genscen.ParseFamilies(families)
	if err != nil {
		return err
	}
	eng := portfolio.New(portfolio.Config{Workers: workers, Cache: portfolio.NewCache()})
	for _, fam := range fams {
		for s := 0; s < seeds; s++ {
			in, err := genscen.Generate(fam, uint64(seedStart+s), genscen.Config{})
			if err != nil {
				return err
			}
			rep, err := eng.EvaluateContext(ctx, in.PortfolioScenario(nil))
			if err != nil {
				return err
			}
			if rep.Err != nil {
				continue
			}
			outs := make([]selector.Outcome, len(rep.Results))
			for i, r := range rep.Results {
				outs[i] = selector.Outcome{
					Heuristic: r.Heuristic,
					OK:        r.Err == nil && r.Schedule != nil,
				}
				if outs[i].OK {
					outs[i].Makespan = r.Schedule.Makespan
				}
			}
			l.Observe(selector.Extract(in.Platform, in.Apps).Bucket(), outs)
		}
	}
	return nil
}

// ingestTelemetry folds one NDJSON race-record file (cosched
// -telemetry's output) into l. A malformed or invalid record aborts
// with its line number: a ledger must never absorb partial garbage.
func ingestTelemetry(l *selector.Ledger, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for line := 1; sc.Scan(); line++ {
		if len(sc.Bytes()) == 0 {
			continue
		}
		var rr selector.RaceRecord
		if err := json.Unmarshal(sc.Bytes(), &rr); err != nil {
			return fmt.Errorf("%s:%d: %w", path, line, err)
		}
		if err := l.Ingest(rr); err != nil {
			return fmt.Errorf("%s:%d: %w", path, line, err)
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	return nil
}

func runInspect(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("ledger inspect", flag.ContinueOnError)
	var (
		inPath  = fs.String("in", "runs/ledger.json", "ledger file to inspect")
		verbose = fs.Bool("v", false, "also list every (bucket, heuristic) cell")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	l, err := selector.LoadFile(*inPath)
	if err != nil {
		return err
	}
	th := selector.DefaultThresholds()
	fmt.Fprintf(out, "ledger %s: %d buckets, %d races, fingerprint %s\n\n",
		*inPath, len(l.Buckets()), l.Races(), l.Fingerprint())
	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "bucket\tprediction\twin rate\tmedian margin\tconfident")
	for _, bucket := range l.Buckets() {
		pred, ok := l.Predict(bucket, sched.ExtendedHeuristics)
		if !ok {
			fmt.Fprintf(tw, "%s\t(no evidence)\t\t\t\n", bucket)
			continue
		}
		fmt.Fprintf(tw, "%s\t%v\t%.0f%% (%d/%d)\t%.6f\t%v\n",
			bucket, pred.Heuristic, 100*pred.WinRate, pred.Wins, pred.Races,
			pred.Gap, pred.Confident(th))
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	if !*verbose {
		return nil
	}
	fmt.Fprintln(out)
	tw = tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "bucket\theuristic\traces\twins\twin rate\tmedian margin")
	for _, bucket := range l.Buckets() {
		for _, h := range sched.ExtendedHeuristics {
			c, ok := l.Cell(bucket, h)
			if !ok {
				continue
			}
			fmt.Fprintf(tw, "%s\t%v\t%d\t%d\t%.0f%%\t%.6f\n",
				bucket, h, c.Races, c.Wins, 100*c.WinRate(), c.MedianMargin())
		}
	}
	return tw.Flush()
}
