package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/selector"
)

// TestTrainSweepDeterministicAcrossWorkers: the trained artifact is a
// pure function of the sweep parameters — worker count must not leak
// into the fingerprint.
func TestTrainSweepDeterministicAcrossWorkers(t *testing.T) {
	dir := t.TempDir()
	p1 := filepath.Join(dir, "w1.json")
	p8 := filepath.Join(dir, "w8.json")
	ctx := context.Background()
	for _, args := range [][]string{
		{"train", "-families", "zero-work,single-app", "-seeds", "4", "-workers", "1", "-out", p1},
		{"train", "-families", "zero-work,single-app", "-seeds", "4", "-workers", "8", "-out", p8},
	} {
		if err := run(ctx, args, os.Stderr); err != nil {
			t.Fatal(err)
		}
	}
	b1, err := os.ReadFile(p1)
	if err != nil {
		t.Fatal(err)
	}
	b8, err := os.ReadFile(p8)
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b8) {
		t.Fatal("trained ledgers differ between -workers 1 and 8")
	}
}

// TestTrainMergesAndIngestsTelemetry: a second train run merges into
// the existing artifact, telemetry ingest accepts cosched's NDJSON, and
// inspect renders the result.
func TestTrainMergesAndIngestsTelemetry(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "ledger.json")
	ctx := context.Background()
	if err := run(ctx, []string{"train", "-families", "single-app", "-seeds", "2", "-out", out}, os.Stderr); err != nil {
		t.Fatal(err)
	}
	first, err := selector.LoadFile(out)
	if err != nil {
		t.Fatal(err)
	}

	telem := filepath.Join(dir, "races.ndjson")
	lines := `{"bucket":"n=3|seq=1|fp=0|lat=0|skew=0|freq=2|miss=-4","heuristic":"DominantMinRatio","win":true,"margin":1}
{"bucket":"n=3|seq=1|fp=0|lat=0|skew=0|freq=2|miss=-4","heuristic":"Fair","win":false,"margin":1.25}
`
	if err := os.WriteFile(telem, []byte(lines), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(ctx, []string{"train", "-telemetry", telem, "-out", out}, os.Stderr); err != nil {
		t.Fatal(err)
	}
	merged, err := selector.LoadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := merged.Races(), first.Races()+2; got != want {
		t.Fatalf("merged races = %d, want %d (sweep) + 2 (telemetry)", got, want)
	}

	var sb strings.Builder
	if err := run(ctx, []string{"inspect", "-in", out, "-v"}, &sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"DominantMinRatio", "fingerprint " + merged.Fingerprint(), "n=3|seq=1|fp=0"} {
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("inspect output missing %q:\n%s", want, sb.String())
		}
	}

	// A corrupt telemetry line aborts with its location, leaving the
	// artifact untouched.
	bad := filepath.Join(dir, "bad.ndjson")
	if err := os.WriteFile(bad, []byte(`{"bucket":"b","heuristic":"NoSuch","win":true,"margin":1}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(ctx, []string{"train", "-telemetry", bad, "-out", out}, os.Stderr); err == nil || !strings.Contains(err.Error(), "bad.ndjson:1") {
		t.Fatalf("bad telemetry error = %v, want line-numbered failure", err)
	}
	after, err := selector.LoadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if after.Fingerprint() != merged.Fingerprint() {
		t.Fatal("failed ingest mutated the on-disk ledger")
	}
}
