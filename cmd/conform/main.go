// Command conform runs the differential-testing conformance harness
// over every scheduling layer of the repository: seeded scenario
// families (internal/genscen) are evaluated by the static heuristics,
// the portfolio engine, the brute-force oracle and the online
// discrete-event simulator, and the layers are cross-checked against
// each other (see internal/conform for the check catalogue).
//
// Usage:
//
//	conform -seeds 100                       # full sweep, markdown report
//	conform -seeds 100 -format ndjson        # machine-readable report
//	conform -families zero-work -seeds 1 -seed 27
//	                                         # reproduce one scenario
//	conform -golden internal/conform/testdata/golden.json
//	                                         # regression-check committed digests
//	conform -golden ... -update              # re-baseline the corpus
//
// With -fleet the harness instead sweeps the multi-node fleet families
// (internal/fleet behind internal/genscen's fleet generators), checking
// routing determinism across worker counts, the single-node reduction
// to internal/des and the fleet-vs-best-solo stretch invariant, against
// its own golden corpus:
//
//	conform -fleet -seeds 4
//	conform -fleet -golden internal/conform/testdata/golden_fleet.json
//	conform -fleet -golden ... -update
//
// The exit status is 0 only when every cross-check passed (and, with
// -golden, every digest matched). A failing seed prints a one-line
// reproduction command.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"

	"repro/internal/conform"
	"repro/internal/genscen"
	"repro/internal/obs"
	"repro/internal/selector"
)

func main() {
	// Ctrl-C cancels the context; the sweep stops within one scenario.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	go func() {
		// After the first signal cancels ctx, restore the default
		// disposition so a second Ctrl-C force-kills even if some path
		// cannot observe the cancellation (e.g. blocked on stdin).
		<-ctx.Done()
		stop()
	}()
	code, err := run(ctx, os.Args[1:], os.Stdout, os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "conform:", err)
		if code == 0 {
			code = 2
		}
	}
	os.Exit(code)
}

// run executes the CLI; it returns the process exit code plus any
// usage/configuration error (violations set the code, not the error).
func run(ctx context.Context, args []string, out, errOut io.Writer) (int, error) {
	fs := flag.NewFlagSet("conform", flag.ContinueOnError)
	fs.SetOutput(errOut)
	var (
		seeds     = fs.Int("seeds", 10, "scenarios per family")
		baseSeed  = fs.Uint64("seed", 1, "first seed (seed values are seed, seed+1, …)")
		families  = fs.String("families", "", "comma-separated family list (default: all)")
		workers   = fs.Int("workers", 8, "worker count of the parallel determinism arm")
		grid      = fs.Int("grid", 6, "oracle cache-share grid steps")
		oracleMax = fs.Int("oracle-max", 5, "largest instance handed to the brute-force oracle")
		minApps   = fs.Int("min-apps", 0, "min applications per instance (0 = default 2)")
		maxApps   = fs.Int("max-apps", 0, "max applications per instance (0 = default 6)")
		format    = fs.String("format", "markdown", `report format: "markdown" or "ndjson"`)
		golden    = fs.String("golden", "", "golden digest corpus to check against (JSON path)")
		update    = fs.Bool("update", false, "with -golden: rewrite the corpus from this run")
		fleetRun  = fs.Bool("fleet", false, "sweep the fleet families (multi-node routing checks) instead of the single-node harness")
		ledger    = fs.String("selector", "", "trained ledger file: add the learned-selection checks (decision determinism across workers, audited gap bound on oracle-exact families)")
		gapBound  = fs.Float64("selector-gap-bound", 0, "audited-gap bound for served predictions on oracle-exact families (0 = committed default)")
		debugAddr = fs.String("debug-addr", "", `serve /metrics, /debug/pprof/* and /debug/vars on this address (e.g. "localhost:6060")`)
	)
	prof := obs.ProfileFlags(fs)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0, nil // usage already printed; -h is not a failure
		}
		return 2, err
	}
	if err := prof.Start(); err != nil {
		return 2, err
	}
	defer func() {
		if e := prof.Stop(); e != nil {
			fmt.Fprintln(errOut, "conform:", e)
		}
	}()
	if *format != "markdown" && *format != "ndjson" {
		return 2, fmt.Errorf("unknown format %q (want markdown or ndjson)", *format)
	}
	if *update && *golden == "" {
		return 2, fmt.Errorf("-update requires -golden <path> (nothing to write otherwise)")
	}
	if *seeds < 1 {
		return 2, fmt.Errorf("-seeds must be >= 1, got %d", *seeds)
	}
	if *ledger != "" && *fleetRun {
		return 2, fmt.Errorf("-selector applies to the single-node harness, not -fleet")
	}
	var metrics *obs.Registry
	var ds *obs.DebugServer
	if *debugAddr != "" {
		metrics = obs.NewRegistry()
		var err error
		ds, err = obs.ServeDebug(*debugAddr, metrics)
		if err != nil {
			return 2, err
		}
		defer ds.Close() // error paths only; Close is idempotent
		fmt.Fprintf(errOut, "conform: debug listener on http://%s\n", ds.Addr())
	}

	if *fleetRun {
		return runFleet(ctx, fleetArgs{
			seeds: *seeds, baseSeed: *baseSeed, families: *families,
			workers: *workers, format: *format, golden: *golden, update: *update,
			metrics: metrics, debug: ds,
		}, out, errOut)
	}

	fams, err := genscen.ParseFamilies(*families)
	if err != nil {
		return 2, err
	}
	var led *selector.Ledger
	if *ledger != "" {
		led, err = selector.LoadFile(*ledger)
		if err != nil {
			return 2, err
		}
	}
	opt := conform.Options{
		Seeds:            *seeds,
		BaseSeed:         *baseSeed,
		Families:         fams,
		Workers:          *workers,
		Grid:             *grid,
		OracleMaxApps:    *oracleMax,
		Gen:              genscen.Config{MinApps: *minApps, MaxApps: *maxApps},
		Metrics:          metrics,
		Selector:         led,
		SelectorGapBound: *gapBound,
	}

	// A golden check must regenerate exactly the corpus's scenarios, so
	// its recorded parameters (including the family set, derived from
	// the stored digests) override the flags; only the worker count
	// stays ours, because digests are worker-invariant by construction.
	var gold *conform.Golden
	if *golden != "" && !*update {
		gold, err = conform.LoadGolden(*golden)
		if err != nil {
			return 2, err
		}
		gopt := gold.Options()
		gopt.Workers = opt.Workers
		gopt.Metrics = opt.Metrics // digests are metrics-invariant by construction
		// The selector rides along: its checks never touch the digests,
		// so a -selector run validates against the same corpus.
		gopt.Selector = opt.Selector
		gopt.SelectorGapBound = opt.SelectorGapBound
		opt = gopt
		// The override is easy to misread as "my flags applied"; say
		// what actually runs.
		fmt.Fprintf(errOut, "conform: checking against %s: using its recorded parameters (seeds=%d baseSeed=%d grid=%d oracleMaxApps=%d, %d families); generation flags are ignored in check mode\n",
			*golden, gopt.Seeds, gopt.BaseSeed, gopt.Grid, gopt.OracleMaxApps, len(gopt.Families))
	}

	rep, err := conform.RunContext(ctx, opt)
	if err != nil {
		return 2, err
	}
	// Drain-then-flush: the run is complete, so let any in-flight
	// scrape finish against the final metric state before the report is
	// emitted and the process exits.
	if err := ds.Close(); err != nil {
		return 2, err
	}
	switch *format {
	case "markdown":
		err = rep.Markdown(out)
	case "ndjson":
		err = rep.NDJSON(out)
	}
	if err != nil {
		return 2, err
	}

	code := 0
	if n := rep.ViolationCount(); n > 0 {
		fmt.Fprintf(errOut, "conform: %d cross-check violation(s)\n", n)
		code = 1
	}
	switch {
	case *golden != "" && *update:
		// A corpus must never capture violating behavior: digests of a
		// run that failed its own cross-checks are not a baseline.
		if code != 0 {
			return code, fmt.Errorf("refusing to update %s: this run has cross-check violations", *golden)
		}
		if err := conform.SaveGolden(*golden, rep.Golden()); err != nil {
			return 2, err
		}
		fmt.Fprintf(errOut, "conform: wrote golden corpus %s (%d families)\n", *golden, len(rep.Families))
	case gold != nil:
		if diffs := gold.Compare(rep); len(diffs) > 0 {
			for _, d := range diffs {
				fmt.Fprintf(errOut, "conform: golden mismatch: %s\n", d)
			}
			code = 1
		} else {
			fmt.Fprintf(errOut, "conform: golden digests match (%d families)\n", len(rep.Families))
		}
	}
	return code, nil
}

// fleetArgs carries the flag values the fleet mode consumes.
type fleetArgs struct {
	seeds    int
	baseSeed uint64
	families string
	workers  int
	format   string
	golden   string
	update   bool
	metrics  *obs.Registry
	debug    *obs.DebugServer
}

// runFleet executes the fleet harness — the multi-node analogue of the
// main path, with its own family enum and its own golden corpus.
func runFleet(ctx context.Context, a fleetArgs, out, errOut io.Writer) (int, error) {
	fams, err := genscen.ParseFleetFamilies(a.families)
	if err != nil {
		return 2, err
	}
	opt := conform.FleetOptions{
		Seeds: a.seeds, BaseSeed: a.baseSeed, Families: fams,
		Workers: a.workers, Metrics: a.metrics,
	}
	var gold *conform.FleetGolden
	if a.golden != "" && !a.update {
		gold, err = conform.LoadFleetGolden(a.golden)
		if err != nil {
			return 2, err
		}
		gopt := gold.Options()
		gopt.Workers = opt.Workers
		gopt.Metrics = opt.Metrics // digests are metrics-invariant by construction
		opt = gopt
		fmt.Fprintf(errOut, "conform: checking against %s: using its recorded parameters (seeds=%d baseSeed=%d, %d families); generation flags are ignored in check mode\n",
			a.golden, gopt.Seeds, gopt.BaseSeed, len(gopt.Families))
	}
	rep, err := conform.RunFleetContext(ctx, opt)
	if err != nil {
		return 2, err
	}
	// Drain-then-flush, exactly like the single-node path.
	if err := a.debug.Close(); err != nil {
		return 2, err
	}
	switch a.format {
	case "markdown":
		err = rep.Markdown(out)
	case "ndjson":
		err = rep.NDJSON(out)
	}
	if err != nil {
		return 2, err
	}
	code := 0
	if n := rep.ViolationCount(); n > 0 {
		fmt.Fprintf(errOut, "conform: %d fleet cross-check violation(s)\n", n)
		code = 1
	}
	switch {
	case a.golden != "" && a.update:
		if code != 0 {
			return code, fmt.Errorf("refusing to update %s: this run has cross-check violations", a.golden)
		}
		if err := conform.SaveFleetGolden(a.golden, rep.Golden()); err != nil {
			return 2, err
		}
		fmt.Fprintf(errOut, "conform: wrote fleet golden corpus %s (%d families)\n", a.golden, len(rep.Families))
	case gold != nil:
		if diffs := gold.Compare(rep); len(diffs) > 0 {
			for _, d := range diffs {
				fmt.Fprintf(errOut, "conform: golden mismatch: %s\n", d)
			}
			code = 1
		} else {
			fmt.Fprintf(errOut, "conform: fleet golden digests match (%d families)\n", len(rep.Families))
		}
	}
	return code, nil
}
