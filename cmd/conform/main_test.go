package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"
)

func runMain(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errOut bytes.Buffer
	code, err := run(context.Background(), args, &out, &errOut)
	if err != nil {
		t.Fatalf("conform %s: %v", strings.Join(args, " "), err)
	}
	return code, out.String(), errOut.String()
}

func TestSmallSweepMarkdown(t *testing.T) {
	code, out, _ := runMain(t, "-seeds", "2", "-families", "single-app,zero-work", "-workers", "2")
	if code != 0 {
		t.Fatalf("exit code %d, want 0", code)
	}
	for _, want := range []string{"# Conformance report", "single-app", "zero-work", "0 violation(s)"} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown output missing %q:\n%s", want, out)
		}
	}
}

func TestNDJSONFormat(t *testing.T) {
	code, out, _ := runMain(t, "-seeds", "1", "-families", "single-app", "-format", "ndjson")
	if code != 0 {
		t.Fatalf("exit code %d, want 0", code)
	}
	sc := bufio.NewScanner(strings.NewReader(out))
	var summarySeen bool
	for sc.Scan() {
		var line map[string]any
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad NDJSON %q: %v", sc.Text(), err)
		}
		if line["type"] == "summary" {
			summarySeen = true
			if line["violations"].(float64) != 0 {
				t.Errorf("summary reports violations: %v", line)
			}
		}
	}
	if !summarySeen {
		t.Error("no summary line in NDJSON output")
	}
}

// TestCommittedGoldenCorpus drives the CLI end-to-end against the
// repository's committed digest corpus — the same gate CI runs.
func TestCommittedGoldenCorpus(t *testing.T) {
	golden := filepath.Join("..", "..", "internal", "conform", "testdata", "golden.json")
	code, _, errOut := runMain(t, "-golden", golden, "-workers", "3")
	if code != 0 {
		t.Fatalf("golden check failed (exit %d):\n%s", code, errOut)
	}
	if !strings.Contains(errOut, "golden digests match") {
		t.Errorf("missing match confirmation:\n%s", errOut)
	}
}

func TestGoldenUpdateRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "golden.json")
	code, _, errOut := runMain(t, "-seeds", "1", "-families", "single-app", "-golden", path, "-update")
	if code != 0 {
		t.Fatalf("update failed (exit %d):\n%s", code, errOut)
	}
	code, _, errOut = runMain(t, "-golden", path)
	if code != 0 {
		t.Fatalf("re-check failed (exit %d):\n%s", code, errOut)
	}
}

func TestBadFlags(t *testing.T) {
	var out, errOut bytes.Buffer
	if code, err := run(context.Background(), []string{"-format", "xml"}, &out, &errOut); err == nil || code != 2 {
		t.Errorf("bad format: code %d err %v", code, err)
	}
	if code, err := run(context.Background(), []string{"-families", "bogus"}, &out, &errOut); err == nil || code != 2 {
		t.Errorf("bad family: code %d err %v", code, err)
	}
	if code, err := run(context.Background(), []string{"-golden", filepath.Join(t.TempDir(), "nope.json")}, &out, &errOut); err == nil || code != 2 {
		t.Errorf("absent corpus: code %d err %v", code, err)
	}
}

func TestUpdateRequiresGolden(t *testing.T) {
	var out, errOut bytes.Buffer
	if code, err := run(context.Background(), []string{"-update"}, &out, &errOut); err == nil || code != 2 {
		t.Errorf("-update without -golden: code %d err %v", code, err)
	}
}

// TestGoldenCheckAnnouncesParameterOverride: check mode must say it is
// running the corpus's recorded parameters, not the flags.
func TestGoldenCheckAnnouncesParameterOverride(t *testing.T) {
	path := filepath.Join(t.TempDir(), "golden.json")
	if code, _, _ := runMain(t, "-seeds", "1", "-families", "single-app", "-golden", path, "-update"); code != 0 {
		t.Fatal("update failed")
	}
	_, _, errOut := runMain(t, "-golden", path, "-seeds", "99")
	if !strings.Contains(errOut, "recorded parameters") {
		t.Errorf("no override notice:\n%s", errOut)
	}
}
