package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	repro "repro"
	"repro/internal/obs"
	"repro/internal/serve"
)

// target boots a real serve.Server behind httptest, the same handler
// stack coschedd mounts.
func target(t *testing.T) *httptest.Server {
	t.Helper()
	reg := obs.NewRegistry()
	ts := httptest.NewServer(serve.New(serve.Config{
		Client:   repro.NewClient(repro.WithMetrics(reg)),
		Registry: reg,
	}))
	t.Cleanup(ts.Close)
	return ts
}

func readSummary(t *testing.T, dir string) summary {
	t.Helper()
	b, err := os.ReadFile(filepath.Join(dir, "summary.json"))
	if err != nil {
		t.Fatal(err)
	}
	var s summary
	if err := json.Unmarshal(b, &s); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestLoadRunArtifacts(t *testing.T) {
	ts := target(t)
	dir := t.TempDir()
	var out, errOut bytes.Buffer
	err := run(context.Background(), []string{
		"-target", ts.URL, "-arrivals", "poisson", "-rate", "500", "-n", "20",
		"-tenants", "3", "-out", dir,
	}, &out, &errOut)
	if err != nil {
		t.Fatalf("run = %v\nstderr: %s", err, errOut.String())
	}

	sum := readSummary(t, dir)
	if sum.Sent != 20 || sum.OK != 20 || sum.Shed != 0 || sum.Errors != 0 {
		t.Errorf("summary counts = sent %d ok %d shed %d errors %d, want 20/20/0/0",
			sum.Sent, sum.OK, sum.Shed, sum.Errors)
	}
	if sum.P99 < sum.P50 || sum.P50 <= 0 {
		t.Errorf("quantiles implausible: p50 %v p99 %v", sum.P50, sum.P99)
	}
	if sum.RPS <= 0 {
		t.Errorf("rps = %v", sum.RPS)
	}

	// The generator's own exposition must lint.
	lp, err := os.ReadFile(filepath.Join(dir, "latency.prom"))
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.LintProm(bytes.NewReader(lp)); err != nil {
		t.Errorf("latency.prom does not lint: %v", err)
	}
	if !strings.Contains(string(lp), "coscheload_latency_seconds_count 20") {
		t.Errorf("latency.prom missing observations:\n%s", lp)
	}

	// bench.txt must parse as go-bench lines with ns/op on every line.
	bt, err := os.ReadFile(filepath.Join(dir, "bench.txt"))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"BenchmarkServeLoad/schedule/p50 1 ",
		"BenchmarkServeLoad/schedule/p99 1 ",
		"BenchmarkServeLoad/schedule/sustained 1 ",
	} {
		if !strings.Contains(string(bt), want) {
			t.Errorf("bench.txt missing %q:\n%s", want, bt)
		}
	}
	for _, line := range strings.Split(strings.TrimSpace(string(bt)), "\n") {
		if !strings.HasSuffix(line, " ns/op") {
			t.Errorf("bench line %q lacks ns/op", line)
		}
	}

	// The scraped target exposition must exist and lint too.
	mp, err := os.ReadFile(filepath.Join(dir, "metrics.prom"))
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.LintProm(bytes.NewReader(mp)); err != nil {
		t.Errorf("metrics.prom does not lint: %v", err)
	}
	if !strings.Contains(string(mp), "coschedd_admitted_total 20") {
		t.Errorf("target scrape missing admissions:\n%s", mp)
	}

	if !strings.Contains(out.String(), "sent 20, ok 20") {
		t.Errorf("stdout summary missing:\n%s", out.String())
	}
}

func TestLoadEndpoints(t *testing.T) {
	ts := target(t)
	for _, ep := range []string{"evaluate", "simulate"} {
		dir := t.TempDir()
		var out, errOut bytes.Buffer
		err := run(context.Background(), []string{
			"-target", ts.URL, "-endpoint", ep, "-rate", "1000", "-n", "4",
			"-out", dir, "-scrape=false",
		}, &out, &errOut)
		if err != nil {
			t.Fatalf("%s: run = %v\nstderr: %s", ep, err, errOut.String())
		}
		if sum := readSummary(t, dir); sum.OK != 4 {
			t.Errorf("%s: ok = %d, want 4", ep, sum.OK)
		}
	}
}

func TestLoadArrivalFamilies(t *testing.T) {
	ts := target(t)
	for _, arr := range []string{"gamma", "batch", "trace", "poisson:rate=800,n=6"} {
		dir := t.TempDir()
		var out, errOut bytes.Buffer
		err := run(context.Background(), []string{
			"-target", ts.URL, "-arrivals", arr, "-rate", "800", "-n", "6",
			"-out", dir, "-scrape=false",
		}, &out, &errOut)
		if err != nil {
			t.Fatalf("%s: run = %v\nstderr: %s", arr, err, errOut.String())
		}
		if sum := readSummary(t, dir); sum.OK != 6 {
			t.Errorf("%s: ok = %d, want 6", arr, sum.OK)
		}
	}
}

// TestLoadInterruptLosesNothing cancels mid-run and checks the
// invariant the ISSUE demands: everything dispatched is accounted for
// (completed, shed or errored — never dropped) and the artifacts are
// still written.
func TestLoadInterruptLosesNothing(t *testing.T) {
	ts := target(t)
	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(150 * time.Millisecond)
		cancel()
	}()
	var out, errOut bytes.Buffer
	// 2 req/s for 100 requests would take 50s; the cancel must cut
	// issuing short while the artifacts still appear.
	err := run(ctx, []string{
		"-target", ts.URL, "-rate", "2", "-n", "100", "-out", dir,
	}, &out, &errOut)
	if err != nil {
		t.Fatalf("run = %v\nstderr: %s", err, errOut.String())
	}
	sum := readSummary(t, dir)
	if !sum.Interrupted {
		t.Error("summary not marked interrupted")
	}
	if sum.Sent >= 100 {
		t.Errorf("sent = %d, interrupt did not stop issuing", sum.Sent)
	}
	if got := sum.OK + sum.Shed + sum.Errors; got != sum.Sent {
		t.Errorf("lost requests: sent %d but accounted %d", sum.Sent, got)
	}
	if _, err := os.Stat(filepath.Join(dir, "bench.txt")); err != nil {
		t.Errorf("bench.txt missing after interrupt: %v", err)
	}
}

func TestLoadSheddingCounted(t *testing.T) {
	// A 1-slot server under a 20-request burst must shed; shed responses
	// are counted, not treated as errors, and the run still succeeds.
	reg := obs.NewRegistry()
	ts := httptest.NewServer(serve.New(serve.Config{
		Client:      repro.NewClient(repro.WithMetrics(reg)),
		Registry:    reg,
		MaxInflight: 1,
	}))
	defer ts.Close()
	dir := t.TempDir()
	var out, errOut bytes.Buffer
	err := run(context.Background(), []string{
		"-target", ts.URL, "-arrivals", "batch:size=20,interval=1,n=20",
		"-n", "20", "-out", dir, "-scrape=false",
	}, &out, &errOut)
	if err != nil {
		t.Fatalf("run = %v\nstderr: %s", err, errOut.String())
	}
	sum := readSummary(t, dir)
	if sum.Errors != 0 {
		t.Errorf("shed responses counted as errors: %+v", sum)
	}
	if sum.OK+sum.Shed != 20 {
		t.Errorf("ok %d + shed %d != 20", sum.OK, sum.Shed)
	}
}

func TestLoadBadFlags(t *testing.T) {
	cases := [][]string{
		{}, // no target
		{"-target", "x", "-endpoint", "bogus"},
		{"-target", "x", "-arrivals", "bogus"},
		{"-target", "x", "-rate", "0"},
	}
	for _, args := range cases {
		var out, errOut bytes.Buffer
		if err := run(context.Background(), args, &out, &errOut); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestLoadUnhealthyTarget(t *testing.T) {
	var out, errOut bytes.Buffer
	err := run(context.Background(), []string{
		"-target", "http://127.0.0.1:1", "-wait", "200ms", "-n", "1",
		"-out", t.TempDir(),
	}, &out, &errOut)
	if err == nil || !strings.Contains(err.Error(), "not healthy") {
		t.Errorf("err = %v, want health-wait failure", err)
	}
}
