// Command coscheload replays the DES arrival processes against a live
// coschedd as real HTTP requests: the paper's virtual arrival streams
// (Poisson, Gamma bursts, fixed batches, trace-derived gaps) become
// wall-clock request schedules, and the observed latencies become a
// run-directory artifact the benchmark gate can hold to a budget.
//
// Usage:
//
//	coscheload -target http://localhost:8080 -arrivals poisson -rate 50 -n 500
//	coscheload -target http://$ADDR -endpoint evaluate -arrivals gamma -duration 30s
//
// Bare arrival names expand to full specs around -rate (requests per
// second); any "process:key=value,..." spec from dessim works verbatim,
// with one virtual time unit mapped to one wall second. Requests
// round-robin over -tenants distinct X-Tenant identities.
//
// The run directory (-out, default runs/load-<stamp>) receives:
//
//	summary.json   counts, achieved RPS, p50/p90/p99 latency
//	latency.prom   the load generator's own histogram exposition
//	bench.txt      BenchmarkServeLoad/<endpoint>/{p50,p99,sustained}
//	               lines for cmd/benchgate
//	metrics.prom   the target's /metrics scrape (unless -scrape=false)
//
// On SIGTERM/SIGINT the generator stops issuing, waits for every
// in-flight request to complete, and still writes all artifacts — a
// mid-run signal loses zero requests.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/des"
	"repro/internal/obs"
	"repro/internal/stats"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		stop()
	}()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "coscheload:", err)
		os.Exit(1)
	}
}

// summary is the summary.json artifact.
type summary struct {
	Target   string  `json:"target"`
	Endpoint string  `json:"endpoint"`
	Arrivals string  `json:"arrivals"`
	Tenants  int     `json:"tenants"`
	Sent     int     `json:"sent"`
	OK       int     `json:"ok"`
	Shed     int     `json:"shed"`
	Errors   int     `json:"errors"`
	Elapsed  float64 `json:"elapsedSeconds"`
	RPS      float64 `json:"rps"`
	P50      float64 `json:"p50Seconds"`
	P90      float64 `json:"p90Seconds"`
	P99      float64 `json:"p99Seconds"`
	// Interrupted records that issuing was cut short by a signal; the
	// requests already in flight still completed and are counted.
	Interrupted bool `json:"interrupted,omitempty"`
}

func run(ctx context.Context, args []string, out, errOut io.Writer) error {
	fs := flag.NewFlagSet("coscheload", flag.ContinueOnError)
	fs.SetOutput(errOut)
	var (
		target    = fs.String("target", "", "base URL of a running coschedd (required)")
		endpoint  = fs.String("endpoint", "schedule", "endpoint to drive: schedule, evaluate or simulate")
		arrivals  = fs.String("arrivals", "poisson", `arrival process: bare name (poisson, gamma, batch, trace) or full "process:key=value,..." spec`)
		rate      = fs.Float64("rate", 20, "target request rate per second (parameterizes bare arrival names)")
		n         = fs.Int("n", 0, "number of requests (0 = rate × duration, or 200 without -duration)")
		duration  = fs.Duration("duration", 0, "stop issuing after this wall time (0 = run the arrival stream out)")
		tenants   = fs.Int("tenants", 4, "distinct X-Tenant identities to round-robin")
		seed      = fs.Uint64("seed", 1, "arrival-stream seed")
		heuristic = fs.String("heuristic", "", "restrict schedule/evaluate bodies to one heuristic (default: full race)")
		inflight  = fs.Int("maxinflight", 64, "max concurrent requests on the wire")
		timeout   = fs.Duration("timeout", 10*time.Second, "per-request timeout")
		wait      = fs.Duration("wait", 10*time.Second, "wait this long for the target's /healthz before starting")
		outDir    = fs.String("out", "", "run directory (default runs/load-<stamp>)")
		scrape    = fs.Bool("scrape", true, "scrape the target's /metrics into the run directory after the run")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *target == "" {
		return fmt.Errorf("-target is required")
	}
	base := strings.TrimRight(*target, "/")
	if *n == 0 {
		if *duration > 0 {
			*n = int(*rate * duration.Seconds())
		} else {
			*n = 200
		}
		if *n < 1 {
			*n = 1
		}
	}

	times, specName, err := arrivalTimes(*arrivals, *rate, *n, *seed)
	if err != nil {
		return err
	}
	body, path, err := requestBody(*endpoint, *heuristic)
	if err != nil {
		return err
	}

	dir := *outDir
	if dir == "" {
		dir = filepath.Join("runs", fmt.Sprintf("load-%s", time.Now().UTC().Format("20060102-150405")))
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}

	if err := waitHealthy(ctx, base, *wait); err != nil {
		return err
	}

	reg := obs.NewRegistry()
	hist := reg.Histogram("coscheload_latency_seconds", "Observed request latency.", obs.ExpBuckets(1e-4, 2, 16))
	client := &http.Client{Timeout: *timeout}

	var (
		mu        sync.Mutex
		latencies []float64
		sum       summary
	)
	sum.Target, sum.Endpoint, sum.Arrivals, sum.Tenants = base, *endpoint, specName, *tenants

	sem := make(chan struct{}, max(1, *inflight))
	var wg sync.WaitGroup
	start := time.Now()
	deadline := time.Time{}
	if *duration > 0 {
		deadline = start.Add(*duration)
	}

issue:
	for i, at := range times {
		due := start.Add(time.Duration(at * float64(time.Second)))
		if !deadline.IsZero() && due.After(deadline) {
			break
		}
		if d := time.Until(due); d > 0 {
			select {
			case <-time.After(d):
			case <-ctx.Done():
				sum.Interrupted = true
				break issue
			}
		}
		// Issuing respects the signal; requests already dispatched run
		// on their own timeout-bounded contexts and always finish.
		select {
		case sem <- struct{}{}:
		case <-ctx.Done():
			sum.Interrupted = true
			break issue
		}
		if ctx.Err() != nil {
			<-sem
			sum.Interrupted = true
			break
		}
		sum.Sent++
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			t0 := time.Now()
			status, err := post(client, base+path, fmt.Sprintf("t%d", i%*tenants), body)
			lat := time.Since(t0).Seconds()
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err != nil:
				sum.Errors++
			case status == http.StatusTooManyRequests:
				sum.Shed++
			case status != http.StatusOK:
				sum.Errors++
			default:
				sum.OK++
				latencies = append(latencies, lat)
				hist.Observe(lat)
			}
		}(i)
	}
	wg.Wait() // a mid-run signal must lose zero in-flight requests
	sum.Elapsed = time.Since(start).Seconds()
	if sum.Elapsed > 0 {
		sum.RPS = float64(sum.OK) / sum.Elapsed
	}
	if len(latencies) > 0 {
		sum.P50, _ = stats.Quantile(latencies, 0.50)
		sum.P90, _ = stats.Quantile(latencies, 0.90)
		sum.P99, _ = stats.Quantile(latencies, 0.99)
	}

	if err := writeArtifacts(dir, &sum, reg); err != nil {
		return err
	}
	if *scrape {
		if err := scrapeMetrics(base, filepath.Join(dir, "metrics.prom")); err != nil {
			// The run itself succeeded; a failed scrape (target already
			// gone) should not discard its artifacts.
			fmt.Fprintf(errOut, "coscheload: metrics scrape failed: %v\n", err)
		}
	}

	fmt.Fprintf(out, "coscheload: %s %s: sent %d, ok %d, shed %d, errors %d in %.1fs (%.1f req/s, p50 %.1fms, p99 %.1fms) -> %s\n",
		sum.Endpoint, sum.Arrivals, sum.Sent, sum.OK, sum.Shed, sum.Errors,
		sum.Elapsed, sum.RPS, 1e3*sum.P50, 1e3*sum.P99, dir)
	if sum.Errors > 0 {
		return fmt.Errorf("%d request(s) failed", sum.Errors)
	}
	return nil
}

// arrivalTimes materializes the arrival process into wall-clock offsets
// (seconds). Bare process names expand to full specs that hit the
// requested mean rate; explicit specs pass through verbatim.
func arrivalTimes(spec string, rate float64, n int, seed uint64) ([]float64, string, error) {
	if rate <= 0 {
		return nil, "", fmt.Errorf("-rate must be > 0, got %v", rate)
	}
	if !strings.Contains(spec, ":") {
		switch spec {
		case "poisson":
			spec = fmt.Sprintf("poisson:rate=%g,n=%d", rate, n)
		case "gamma":
			// Bursts of 8 with Gamma(0.5, scale) gaps; shape·scale is
			// the mean inter-burst gap, so scale = burst/(shape·rate)
			// keeps the long-run mean at -rate.
			spec = fmt.Sprintf("gamma:burst=8,shape=0.5,scale=%g,n=%d", 8/(0.5*rate), n)
		case "batch":
			spec = fmt.Sprintf("batch:size=8,interval=%g,n=%d", 8/rate, n)
		case "trace":
			spec = fmt.Sprintf("trace:trace=zipf,meanGap=%g,n=%d", 1/rate, n)
		default:
			return nil, "", fmt.Errorf("unknown arrival process %q (want poisson, gamma, batch, trace or a full spec)", spec)
		}
	}
	as, err := des.ParseArrivalSpec(spec)
	if err != nil {
		return nil, "", err
	}
	sc, err := (&des.Spec{Arrivals: as, Seed: seed}).Build(1)
	if err != nil {
		return nil, "", err
	}
	var times []float64
	for {
		a, ok := sc.Arrivals.Next()
		if !ok {
			break
		}
		times = append(times, a.Time)
		if len(times) >= n {
			break
		}
	}
	if len(times) == 0 {
		return nil, "", fmt.Errorf("arrival spec %q produced no arrivals", spec)
	}
	return times, spec, nil
}

// requestBody builds the fixed request body for the chosen endpoint.
// Seeds are never pinned in the body, so the per-tenant derivation is
// exercised exactly as production traffic would.
func requestBody(endpoint, heuristic string) (body, path string, err error) {
	const apps = `[
		{"name": "CG", "work": 5.7e10, "seq": 0.05, "freq": 0.535, "missRate": 6.59e-4, "refCache": 4e7},
		{"name": "FT", "work": 7.9e10, "seq": 0.02, "freq": 0.590, "missRate": 3.26e-4, "refCache": 4e7},
		{"name": "LU", "work": 9.3e10, "seq": 0.01, "freq": 0.525, "missRate": 4.85e-4, "refCache": 4e7}
	]`
	hs := ""
	if heuristic != "" {
		hs = fmt.Sprintf(`, "heuristics": [%q]`, heuristic)
	}
	switch endpoint {
	case "schedule":
		return fmt.Sprintf(`{"apps": %s%s}`, apps, hs), "/v1/schedule", nil
	case "evaluate":
		return fmt.Sprintf(`{"apps": %s%s}`, apps, hs), "/v1/evaluate", nil
	case "simulate":
		return `{"arrivals": {"process": "poisson", "rate": 2e-9, "n": 4}, "policy": "DominantMinRatio", "maxResident": 2}`, "/v1/simulate", nil
	default:
		return "", "", fmt.Errorf("unknown endpoint %q (want schedule, evaluate or simulate)", endpoint)
	}
}

func post(client *http.Client, url, tenant, body string) (int, error) {
	req, err := http.NewRequest(http.MethodPost, url, strings.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Tenant", tenant)
	resp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	// Drain so the transport reuses the connection under load.
	_, _ = io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, nil
}

// waitHealthy polls the target's /healthz until it answers or the
// budget runs out.
func waitHealthy(ctx context.Context, base string, budget time.Duration) error {
	deadline := time.Now().Add(budget)
	client := &http.Client{Timeout: time.Second}
	for {
		resp, err := client.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("target %s not healthy within %s: %v", base, budget, err)
		}
		select {
		case <-time.After(100 * time.Millisecond):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// writeArtifacts emits summary.json, latency.prom and bench.txt into
// the run directory.
func writeArtifacts(dir string, sum *summary, reg *obs.Registry) error {
	sj, err := json.MarshalIndent(sum, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, "summary.json"), append(sj, '\n'), 0o644); err != nil {
		return err
	}

	pf, err := os.Create(filepath.Join(dir, "latency.prom"))
	if err != nil {
		return err
	}
	if err := reg.WriteProm(pf); err != nil {
		pf.Close()
		return err
	}
	if err := pf.Close(); err != nil {
		return err
	}

	// bench.txt renders the tail-latency and sustained-throughput
	// numbers as go-bench lines, so cmd/benchgate holds them to the
	// budgets in benchmarks/baseline.json exactly like alloc gates:
	// sustained is wall-nanoseconds per completed request (the inverse
	// of achieved RPS).
	var b strings.Builder
	fmt.Fprintf(&b, "BenchmarkServeLoad/%s/p50 1 %.1f ns/op\n", sum.Endpoint, 1e9*sum.P50)
	fmt.Fprintf(&b, "BenchmarkServeLoad/%s/p99 1 %.1f ns/op\n", sum.Endpoint, 1e9*sum.P99)
	if sum.OK > 0 {
		fmt.Fprintf(&b, "BenchmarkServeLoad/%s/sustained 1 %.1f ns/op\n", sum.Endpoint, 1e9*sum.Elapsed/float64(sum.OK))
	}
	return os.WriteFile(filepath.Join(dir, "bench.txt"), []byte(b.String()), 0o644)
}

// scrapeMetrics saves the target's exposition for the CI lint.
func scrapeMetrics(base, path string) error {
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET /metrics: %s", resp.Status)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := io.Copy(f, resp.Body); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
