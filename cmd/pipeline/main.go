// Command pipeline plans periodic in-situ analysis workloads (the
// paper's Section 1 motivation): given an analysis fleet and a node, it
// reports per-batch latency, searches the best pipelining depth, and
// simulates arrival streams to expose lateness and backlog under a given
// batch period.
//
// Usage:
//
//	pipeline                          # plan the built-in demo fleet
//	pipeline -apps fleet.json -p 64 -depth 4
//	pipeline -period 5e9 -batches 100 # feasibility at a given cadence
//	pipeline -maxdepth 8              # search pipelining depths 1..8
//
// The JSON fleet format matches cmd/cosched's -apps format.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/model"
	"repro/internal/pipeline"
	"repro/internal/sched"
	"repro/internal/solve"
	"repro/internal/workload"
)

type appJSON struct {
	Name      string  `json:"name"`
	Work      float64 `json:"work"`
	Seq       float64 `json:"seq"`
	Freq      float64 `json:"freq"`
	MissRate  float64 `json:"missRate"`
	RefCache  float64 `json:"refCache"`
	Footprint float64 `json:"footprint"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pipeline:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("pipeline", flag.ContinueOnError)
	var (
		appsPath  = fs.String("apps", "", "JSON file describing the analysis fleet (default: NPB Table 2 with 5% sequential fractions)")
		heuristic = fs.String("heuristic", "DominantMinRatio", "co-scheduling policy")
		procs     = fs.Float64("p", 64, "processor count of the analysis node")
		cache     = fs.Float64("cache", 1e9, "LLC size in bytes")
		ls        = fs.Float64("ls", 0.17, "cache access latency")
		ll        = fs.Float64("ll", 1, "cache miss latency")
		alpha     = fs.Float64("alpha", 0.5, "power-law exponent")
		depth     = fs.Int("depth", 0, "pipelining depth (0 = search up to -maxdepth)")
		maxDepth  = fs.Int("maxdepth", 6, "depth search bound when -depth is 0")
		period    = fs.Float64("period", 0, "simulate arrivals at this batch period (0 = 5% above sustainable)")
		batches   = fs.Int("batches", 60, "batches to simulate")
		seed      = fs.Uint64("seed", 42, "seed for randomized heuristics")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	h, err := sched.ParseHeuristic(*heuristic)
	if err != nil {
		return err
	}
	pl := model.Platform{Processors: *procs, CacheSize: *cache, LatencyS: *ls, LatencyL: *ll, Alpha: *alpha}

	fleet, err := loadFleet(*appsPath)
	if err != nil {
		return err
	}

	cfg := pipeline.Config{Platform: pl, Analyses: fleet, Heuristic: h, Depth: *depth, RNG: solve.NewRNG(*seed)}
	var plan *pipeline.Plan
	if *depth > 0 {
		plan, err = pipeline.NewPlan(cfg)
	} else {
		plan, err = pipeline.BestDepth(cfg, *maxDepth)
	}
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "fleet: %d analyses   node: p=%g Cs=%.3g   policy: %v\n", len(fleet), pl.Processors, pl.CacheSize, h)
	fmt.Fprintf(out, "pipelining depth:    %d\n", plan.Depth)
	fmt.Fprintf(out, "batch latency:       %.6g\n", plan.BatchLatency)
	fmt.Fprintf(out, "sustainable period:  %.6g\n", plan.SustainablePeriod)

	simPeriod := *period
	if simPeriod <= 0 {
		simPeriod = plan.SustainablePeriod * 1.05
	}
	st, err := plan.SimulateArrivals(simPeriod, *batches)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "\nsimulating %d batches every %.6g:\n", *batches, simPeriod)
	fmt.Fprintf(out, "  sustainable:  %v\n", st.Sustainable)
	fmt.Fprintf(out, "  max backlog:  %d batches\n", st.MaxBacklog)
	fmt.Fprintf(out, "  mean latency: %.6g\n", st.MeanLatency)
	if !st.Sustainable {
		fmt.Fprintf(out, "  max lateness: %.6g — the pipeline falls behind at this cadence\n", st.MaxLateness)
	}
	return nil
}

// loadFleet reads a JSON fleet, or returns the NPB set with 5%
// sequential fractions when path is empty.
func loadFleet(path string) ([]model.Application, error) {
	if path == "" {
		fleet := workload.NPB()
		for i := range fleet {
			fleet[i].SeqFraction = 0.05
		}
		return fleet, nil
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var in []appJSON
	if err := json.Unmarshal(raw, &in); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	fleet := make([]model.Application, 0, len(in))
	for _, a := range in {
		fleet = append(fleet, model.Application{
			Name: a.Name, Work: a.Work, SeqFraction: a.Seq, AccessFreq: a.Freq,
			RefMissRate: a.MissRate, RefCacheSize: a.RefCache, Footprint: a.Footprint,
		})
	}
	return fleet, nil
}
