package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunDefaultFleet(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-maxdepth", "3", "-batches", "12"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"pipelining depth:", "sustainable period:", "max backlog:"} {
		if !strings.Contains(s, want) {
			t.Fatalf("output missing %q:\n%s", want, s)
		}
	}
	if !strings.Contains(s, "sustainable:  true") {
		t.Fatalf("default 5%% slack should be sustainable:\n%s", s)
	}
}

func TestRunFixedDepthOverload(t *testing.T) {
	var out bytes.Buffer
	// Probe the sustainable period first, then simulate at 70% of it.
	if err := run([]string{"-depth", "2", "-batches", "20", "-period", "1"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "falls behind") {
		t.Fatalf("absurdly short period should overload:\n%s", out.String())
	}
}

func TestRunCustomFleet(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "fleet.json")
	fleet := `[{"name": "x", "work": 1e10, "seq": 0.05, "freq": 0.5, "missRate": 1e-3, "refCache": 4e7}]`
	if err := os.WriteFile(path, []byte(fleet), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"-apps", path, "-depth", "1", "-batches", "5"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "fleet: 1 analyses") {
		t.Fatalf("custom fleet not loaded:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-heuristic", "Nope"}, &out); err == nil {
		t.Fatal("unknown heuristic accepted")
	}
	if err := run([]string{"-apps", "/missing.json"}, &out); err == nil {
		t.Fatal("missing fleet accepted")
	}
	if err := run([]string{"-badflag"}, &out); err == nil {
		t.Fatal("unknown flag accepted")
	}
}
