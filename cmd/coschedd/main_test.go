package main

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// startServer boots run() on a free port and waits for the address
// file, returning the base URL and a cancel-and-wait function.
func startServer(t *testing.T, extra ...string) (string, func() (string, string)) {
	t.Helper()
	addrFile := filepath.Join(t.TempDir(), "addr")
	ctx, cancel := context.WithCancel(context.Background())
	var out, errOut bytes.Buffer
	done := make(chan error, 1)
	args := append([]string{"-addr", "127.0.0.1:0", "-addr-file", addrFile, "-drain", "5s"}, extra...)
	go func() { done <- run(ctx, args, &out, &errOut) }()

	deadline := time.Now().Add(10 * time.Second)
	var addr string
	for time.Now().Before(deadline) {
		if b, err := os.ReadFile(addrFile); err == nil {
			addr = strings.TrimSpace(string(b))
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if addr == "" {
		cancel()
		t.Fatalf("address file never appeared; stderr:\n%s", errOut.String())
	}
	stop := func() (string, string) {
		cancel()
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("run = %v", err)
			}
		case <-time.After(15 * time.Second):
			t.Fatal("run did not return after cancel")
		}
		return out.String(), errOut.String()
	}
	return "http://" + addr, stop
}

func TestServeAndDrain(t *testing.T) {
	url, stop := startServer(t)

	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}

	body := `{"apps": [{"name": "CG", "work": 5.7e10, "seq": 0.05, "freq": 0.535, "missRate": 6.59e-4, "refCache": 4e7}]}`
	req, err := http.NewRequest(http.MethodPost, url+"/v1/schedule", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Tenant", "smoke")
	sresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	sb, _ := io.ReadAll(sresp.Body)
	sresp.Body.Close()
	if sresp.StatusCode != http.StatusOK || !strings.Contains(string(sb), "makespan") {
		t.Fatalf("schedule = %d: %s", sresp.StatusCode, sb)
	}

	mresp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mb, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if !strings.Contains(string(mb), "coschedd_admitted_total 1") {
		t.Errorf("metrics missing admission counter:\n%s", mb)
	}

	out, errOut := stop()
	if !strings.Contains(out, "drained: 1 admitted, 0 shed") {
		t.Errorf("missing drain summary in stdout:\n%s", out)
	}
	if !strings.Contains(errOut, "draining (deadline") {
		t.Errorf("missing drain notice in stderr:\n%s", errOut)
	}

	// The listener must actually be gone after run returns.
	if _, err := http.Get(url + "/healthz"); err == nil {
		t.Error("listener still accepting after drain")
	}
}

func TestBadFlags(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run(context.Background(), []string{"-addr", "256.0.0.1:bogus"}, &out, &errOut); err == nil {
		t.Error("bad listen address accepted")
	}
}
