// Command coschedd serves co-scheduling as a service: the HTTP front
// door of internal/serve (schedule / evaluate / streaming batch /
// online simulation) on top of one shared v2 client, with admission
// control, per-tenant seeds and the obs debug surface on the same
// listener.
//
// Usage:
//
//	coschedd -addr localhost:8080
//	coschedd -addr :0 -addr-file /tmp/coschedd.addr -max-inflight 128
//
// Endpoints (see internal/serve):
//
//	POST /v1/schedule        winning co-schedule for one scenario
//	POST /v1/evaluate        full portfolio report for one scenario
//	POST /v1/evaluate-batch  NDJSON report stream over a scenario stream
//	POST /v1/simulate        online-simulation summary for a des spec
//	GET  /healthz            liveness
//	GET  /metrics            Prometheus exposition (plus /debug/pprof/*)
//
// At most -max-inflight requests are admitted at once; the rest are
// shed immediately with 429 and a Retry-After hint. Scenarios that do
// not pin a seed get one derived from -seed and the X-Tenant header.
//
// On SIGTERM/SIGINT the server drains: it stops accepting connections,
// finishes in-flight requests within -drain, then prints an admission
// summary and exits — drain first, final output last, like the other
// CLIs.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	repro "repro"
	"repro/internal/obs"
	"repro/internal/serve"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		// After the first signal starts the drain, restore the default
		// disposition so a second signal force-kills a wedged drain.
		<-ctx.Done()
		stop()
	}()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "coschedd:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, out, errOut io.Writer) (err error) {
	fs := flag.NewFlagSet("coschedd", flag.ContinueOnError)
	fs.SetOutput(errOut)
	var (
		addr        = fs.String("addr", "localhost:8080", `listen address (":0" picks a free port)`)
		addrFile    = fs.String("addr-file", "", "write the bound address to this file once listening")
		workers     = fs.Int("workers", 0, "scheduling worker pool (0 = GOMAXPROCS)")
		maxInflight = fs.Int("max-inflight", 256, "max admitted requests in flight; excess is shed with 429")
		retryAfter  = fs.Duration("retry-after", time.Second, "Retry-After hint sent with 429")
		seed        = fs.Uint64("seed", 0, "service base seed; per-tenant seeds derive from it")
		drain       = fs.Duration("drain", 10*time.Second, "SIGTERM drain deadline for in-flight requests")
		cache       = fs.Bool("cache", true, "memoize solved (scenario, heuristic) pairs across requests")
		selPath     = fs.String("selector", "", `trained ledger file arming {"selector": true} requests with predicted-winner-first selection`)
	)
	prof := obs.ProfileFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := prof.Start(); err != nil {
		return err
	}
	defer func() {
		if e := prof.Stop(); err == nil {
			err = e
		}
	}()

	reg := obs.NewRegistry()
	copts := []repro.ClientOption{
		repro.WithWorkers(*workers),
		repro.WithCache(*cache),
		repro.WithMetrics(reg),
	}
	if *selPath != "" {
		led, err := repro.LoadSelectorLedger(*selPath)
		if err != nil {
			return err
		}
		copts = append(copts, repro.WithSelector(led, repro.SelectorThresholds{}))
	}
	client := repro.NewClient(copts...)
	srv := serve.New(serve.Config{
		Client:      client,
		Registry:    reg,
		MaxInflight: *maxInflight,
		RetryAfter:  *retryAfter,
		BaseSeed:    *seed,
	})

	// The API and the debug surface share one listener and one
	// lifecycle: the SIGTERM drain below is exactly the DebugServer
	// shutdown path every CLI uses.
	ls, err := obs.ServeHandler(*addr, srv)
	if err != nil {
		return err
	}
	defer ls.Close() // error paths only; Close is idempotent
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(ls.Addr()+"\n"), 0o644); err != nil {
			return err
		}
	}
	fmt.Fprintf(errOut, "coschedd: serving on http://%s (max-inflight %d, drain %s)\n", ls.Addr(), *maxInflight, *drain)

	<-ctx.Done()

	// Drain-then-flush: stop accepting, finish in-flight requests
	// within the deadline, then report what was served.
	fmt.Fprintf(errOut, "coschedd: draining (deadline %s)\n", *drain)
	if err := ls.CloseTimeout(*drain); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	fmt.Fprintf(out, "coschedd: drained: %d admitted, %d shed\n", srv.Admitted(), srv.Shed())
	return nil
}
