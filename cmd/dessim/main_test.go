package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runMain executes the CLI and returns stdout/stderr.
func runMain(t *testing.T, args ...string) (string, string) {
	t.Helper()
	var out, errOut bytes.Buffer
	if err := run(context.Background(), args, &out, &errOut); err != nil {
		t.Fatalf("dessim %s: %v", strings.Join(args, " "), err)
	}
	return out.String(), errOut.String()
}

// TestEndToEndScenarioJSON: scenario JSON in, NDJSON events + summary
// out.
func TestEndToEndScenarioJSON(t *testing.T) {
	scenario := `{
		"arrivals": {"process": "poisson", "rate": 2e-9, "n": 8},
		"policy": "DominantMinRatio",
		"maxResident": 3,
		"seed": 11
	}`
	path := filepath.Join(t.TempDir(), "scenario.json")
	if err := os.WriteFile(path, []byte(scenario), 0o644); err != nil {
		t.Fatal(err)
	}
	out, _ := runMain(t, "-scenario", path)

	sc := bufio.NewScanner(strings.NewReader(out))
	var lines []map[string]any
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("line %d is not JSON: %v\n%s", len(lines), err, sc.Text())
		}
		lines = append(lines, m)
	}
	if len(lines) < 2 {
		t.Fatalf("got %d NDJSON lines, want events + summary", len(lines))
	}
	last := lines[len(lines)-1]
	if last["kind"] != "summary" {
		t.Fatalf("last line kind %v, want summary", last["kind"])
	}
	if last["jobs"].(float64) != 8 {
		t.Errorf("summary jobs %v, want 8", last["jobs"])
	}
	if last["policy"] != "heuristic:DominantMinRatio" {
		t.Errorf("summary policy %v", last["policy"])
	}
	var finishes int
	for _, m := range lines[:len(lines)-1] {
		if m["kind"] == "finish" {
			finishes++
		}
	}
	if finishes != 8 {
		t.Errorf("event stream has %d finishes, want 8", finishes)
	}
}

// TestFlagsOverrideScenario: -arrivals/-policy/-seed work without a
// scenario file and override its fields.
func TestFlagsOverrideScenario(t *testing.T) {
	out, _ := runMain(t, "-arrivals", "batch:interval=0,size=6,n=6", "-policy", "norepartition:DominantMinRatio", "-events=false")
	var sum map[string]any
	if err := json.Unmarshal([]byte(strings.TrimSpace(out)), &sum); err != nil {
		t.Fatalf("summary not JSON: %v\n%s", err, out)
	}
	if sum["kind"] != "summary" || sum["arrivals"] != "replay" && sum["arrivals"] != "batch" {
		t.Fatalf("unexpected summary: %v", sum)
	}
	if sum["repartitions"].(float64) != 1 {
		t.Errorf("t=0 batch under norepartition: %v repartitions, want 1", sum["repartitions"])
	}
	if sum["meanWait"].(float64) != 0 {
		t.Errorf("t=0 batch: mean wait %v, want 0", sum["meanWait"])
	}
}

// TestDeterministicOutput: same seed, same flags -> byte-identical
// NDJSON at different worker counts.
func TestDeterministicOutput(t *testing.T) {
	args := []string{"-arrivals", "poisson:rate=1e-9,n=12", "-policy", "portfolio", "-seed", "42"}
	out1, _ := runMain(t, append(args, "-workers", "1")...)
	out2, _ := runMain(t, append(args, "-workers", "7")...)
	if out1 != out2 {
		t.Fatalf("output differs between worker counts:\n%s\nvs\n%s", out1, out2)
	}
}

// TestGanttRendering: -gantt draws a wait/run timeline on stderr.
func TestGanttRendering(t *testing.T) {
	_, errOut := runMain(t, "-arrivals", "poisson:rate=1e-9,n=4", "-gantt", "-events=false")
	if !strings.Contains(errOut, "█") {
		t.Errorf("no timeline bars on stderr:\n%s", errOut)
	}
	if !strings.Contains(errOut, "wait") {
		t.Errorf("missing timeline header:\n%s", errOut)
	}
}

// TestBadScenarioRejected: invalid values surface as errors, not NaN.
func TestBadScenarioRejected(t *testing.T) {
	for _, bad := range []string{
		`{"arrivals": {"process": "poisson", "rate": -1, "n": 4}}`,
		`{"arrivals": {"process": "poisson", "rate": 1e999, "n": 4}}`,
		`{"arrivals": {"process": "warp"}}`,
		`{"arrivals": {"process": "replay", "replay": [{"time": 1}, {"time": 0}]}}`,
		`{"duration": -5, "arrivals": {"process": "poisson", "rate": 1, "n": 1}}`,
		`{"typo": true, "arrivals": {"process": "poisson", "rate": 1, "n": 1}}`,
	} {
		path := filepath.Join(t.TempDir(), "bad.json")
		if err := os.WriteFile(path, []byte(bad), 0o644); err != nil {
			t.Fatal(err)
		}
		var out, errOut bytes.Buffer
		if err := run(context.Background(), []string{"-scenario", path}, &out, &errOut); err == nil {
			t.Errorf("accepted invalid scenario: %s", bad)
		}
	}
}
