package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// runMain executes the CLI and returns stdout/stderr.
func runMain(t *testing.T, args ...string) (string, string) {
	t.Helper()
	var out, errOut bytes.Buffer
	if err := run(context.Background(), args, &out, &errOut); err != nil {
		t.Fatalf("dessim %s: %v", strings.Join(args, " "), err)
	}
	return out.String(), errOut.String()
}

// TestEndToEndScenarioJSON: scenario JSON in, NDJSON events + summary
// out.
func TestEndToEndScenarioJSON(t *testing.T) {
	scenario := `{
		"arrivals": {"process": "poisson", "rate": 2e-9, "n": 8},
		"policy": "DominantMinRatio",
		"maxResident": 3,
		"seed": 11
	}`
	path := filepath.Join(t.TempDir(), "scenario.json")
	if err := os.WriteFile(path, []byte(scenario), 0o644); err != nil {
		t.Fatal(err)
	}
	out, _ := runMain(t, "-scenario", path)

	sc := bufio.NewScanner(strings.NewReader(out))
	var lines []map[string]any
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("line %d is not JSON: %v\n%s", len(lines), err, sc.Text())
		}
		lines = append(lines, m)
	}
	if len(lines) < 2 {
		t.Fatalf("got %d NDJSON lines, want events + summary", len(lines))
	}
	last := lines[len(lines)-1]
	if last["kind"] != "summary" {
		t.Fatalf("last line kind %v, want summary", last["kind"])
	}
	if last["jobs"].(float64) != 8 {
		t.Errorf("summary jobs %v, want 8", last["jobs"])
	}
	if last["policy"] != "heuristic:DominantMinRatio" {
		t.Errorf("summary policy %v", last["policy"])
	}
	var finishes int
	for _, m := range lines[:len(lines)-1] {
		if m["kind"] == "finish" {
			finishes++
		}
	}
	if finishes != 8 {
		t.Errorf("event stream has %d finishes, want 8", finishes)
	}
}

// TestFlagsOverrideScenario: -arrivals/-policy/-seed work without a
// scenario file and override its fields.
func TestFlagsOverrideScenario(t *testing.T) {
	out, _ := runMain(t, "-arrivals", "batch:interval=0,size=6,n=6", "-policy", "norepartition:DominantMinRatio", "-events=false")
	var sum map[string]any
	if err := json.Unmarshal([]byte(strings.TrimSpace(out)), &sum); err != nil {
		t.Fatalf("summary not JSON: %v\n%s", err, out)
	}
	if sum["kind"] != "summary" || sum["arrivals"] != "replay" && sum["arrivals"] != "batch" {
		t.Fatalf("unexpected summary: %v", sum)
	}
	if sum["repartitions"].(float64) != 1 {
		t.Errorf("t=0 batch under norepartition: %v repartitions, want 1", sum["repartitions"])
	}
	if sum["meanWait"].(float64) != 0 {
		t.Errorf("t=0 batch: mean wait %v, want 0", sum["meanWait"])
	}
}

// TestDeterministicOutput: same seed, same flags -> byte-identical
// NDJSON at different worker counts.
func TestDeterministicOutput(t *testing.T) {
	args := []string{"-arrivals", "poisson:rate=1e-9,n=12", "-policy", "portfolio", "-seed", "42"}
	out1, _ := runMain(t, append(args, "-workers", "1")...)
	out2, _ := runMain(t, append(args, "-workers", "7")...)
	if out1 != out2 {
		t.Fatalf("output differs between worker counts:\n%s\nvs\n%s", out1, out2)
	}
}

// TestGanttRendering: -gantt draws a wait/run timeline on stderr.
func TestGanttRendering(t *testing.T) {
	_, errOut := runMain(t, "-arrivals", "poisson:rate=1e-9,n=4", "-gantt", "-events=false")
	if !strings.Contains(errOut, "█") {
		t.Errorf("no timeline bars on stderr:\n%s", errOut)
	}
	if !strings.Contains(errOut, "wait") {
		t.Errorf("missing timeline header:\n%s", errOut)
	}
}

// TestObservabilityOutputs: -json appends a metrics line, -metrics
// writes a lint-clean Prometheus exposition, -trace writes an NDJSON
// span log, and none of it perturbs the event stream.
func TestObservabilityOutputs(t *testing.T) {
	dir := t.TempDir()
	promPath := filepath.Join(dir, "m.prom")
	tracePath := filepath.Join(dir, "t.ndjson")
	args := []string{"-arrivals", "poisson:rate=2e-9,n=8", "-policy", "DominantMinRatio", "-maxresident", "3", "-seed", "11"}

	bare, _ := runMain(t, args...)
	out, _ := runMain(t, append(args, "-json", "-metrics", promPath, "-trace", tracePath)...)

	lines := strings.Split(strings.TrimSpace(out), "\n")
	var metricsLine map[string]any
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &metricsLine); err != nil {
		t.Fatalf("metrics line not JSON: %v", err)
	}
	if metricsLine["kind"] != "metrics" {
		t.Fatalf("last line kind %v, want metrics", metricsLine["kind"])
	}
	samples := metricsLine["samples"].([]any)
	if len(samples) == 0 {
		t.Error("-json metrics line has no samples")
	}
	// Stripping the metrics line must recover the bare output exactly:
	// instrumentation records, never perturbs.
	if got := strings.Join(lines[:len(lines)-1], "\n") + "\n"; got != bare {
		t.Error("-json changed the event/summary stream")
	}

	prom, err := os.ReadFile(promPath)
	if err != nil {
		t.Fatal(err)
	}
	if errs := obs.LintProm(bytes.NewReader(prom)); len(errs) != 0 {
		t.Errorf("-metrics exposition fails lint: %v", errs)
	}
	if !strings.Contains(string(prom), "des_events_total") {
		t.Error("-metrics exposition missing des_events_total")
	}

	trace, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	tl := strings.Split(strings.TrimSpace(string(trace)), "\n")
	if len(tl) < 2 {
		t.Fatalf("trace has %d lines, want spans + trailer", len(tl))
	}
	var trailer map[string]any
	if err := json.Unmarshal([]byte(tl[len(tl)-1]), &trailer); err != nil {
		t.Fatal(err)
	}
	if trailer["kind"] != "trace-summary" || trailer["events"].(float64) == 0 {
		t.Errorf("unexpected trace trailer: %v", trailer)
	}
}

// drainProbe is an output writer that, on its first write, checks
// whether the -debug-addr listener is still accepting connections.
// Drain-then-flush ordering requires the listener to be gone by then:
// output used to be written first, leaving a window where a scrape of
// the final state raced process exit.
type drainProbe struct {
	bytes.Buffer
	addr   func() string
	probed bool
	open   bool
}

func (p *drainProbe) Write(b []byte) (int, error) {
	if !p.probed && p.addr() != "" {
		p.probed = true
		conn, err := net.DialTimeout("tcp", p.addr(), time.Second)
		if err == nil {
			conn.Close()
			p.open = true
		}
	}
	return p.Buffer.Write(b)
}

// TestDebugServerDrainedBeforeFlush pins the drain-then-flush ordering:
// by the time the first event/summary byte is emitted, the debug
// listener has been drained and closed.
func TestDebugServerDrainedBeforeFlush(t *testing.T) {
	var errOut bytes.Buffer
	out := &drainProbe{addr: func() string {
		_, after, found := strings.Cut(errOut.String(), "debug listener on http://")
		if !found {
			return ""
		}
		return strings.TrimSpace(strings.SplitN(after, "\n", 2)[0])
	}}
	args := []string{"-arrivals", "poisson:rate=2e-9,n=4", "-policy", "DominantMinRatio", "-seed", "3", "-debug-addr", "127.0.0.1:0"}
	if err := run(context.Background(), args, out, &errOut); err != nil {
		t.Fatalf("dessim %s: %v", strings.Join(args, " "), err)
	}
	if !out.probed {
		t.Fatal("probe never fired: no output or no listener line")
	}
	if out.open {
		t.Error("debug listener still accepting connections while final output was being flushed")
	}
	if !strings.Contains(out.String(), `"kind":"summary"`) {
		t.Errorf("run produced no summary:\n%s", out.String())
	}
}

// TestProfileFlagsWriteFiles: -cpuprofile/-memprofile produce non-empty
// pprof files.
func TestProfileFlagsWriteFiles(t *testing.T) {
	dir := t.TempDir()
	cpu, mem := filepath.Join(dir, "cpu.pb"), filepath.Join(dir, "mem.pb")
	runMain(t, "-arrivals", "poisson:rate=2e-9,n=4", "-events=false", "-cpuprofile", cpu, "-memprofile", mem)
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		if st.Size() == 0 {
			t.Errorf("%s is empty", p)
		}
	}
}

// TestBadScenarioRejected: invalid values surface as errors, not NaN.
func TestBadScenarioRejected(t *testing.T) {
	for _, bad := range []string{
		`{"arrivals": {"process": "poisson", "rate": -1, "n": 4}}`,
		`{"arrivals": {"process": "poisson", "rate": 1e999, "n": 4}}`,
		`{"arrivals": {"process": "warp"}}`,
		`{"arrivals": {"process": "replay", "replay": [{"time": 1}, {"time": 0}]}}`,
		`{"duration": -5, "arrivals": {"process": "poisson", "rate": 1, "n": 1}}`,
		`{"typo": true, "arrivals": {"process": "poisson", "rate": 1, "n": 1}}`,
	} {
		path := filepath.Join(t.TempDir(), "bad.json")
		if err := os.WriteFile(path, []byte(bad), 0o644); err != nil {
			t.Fatal(err)
		}
		var out, errOut bytes.Buffer
		if err := run(context.Background(), []string{"-scenario", path}, &out, &errOut); err == nil {
			t.Errorf("accepted invalid scenario: %s", bad)
		}
	}
}
