// Command dessim runs a discrete-event simulation of *online*
// co-scheduling on a cache-partitioned platform: jobs arrive over
// virtual time, and an online policy repartitions processors and cache
// at every arrival and completion (see internal/des).
//
// Usage:
//
//	dessim [flags]
//	dessim -scenario scenario.json
//	dessim -arrivals poisson:rate=0.002,n=64 -policy portfolio -workers 8
//	dessim -arrivals batch:interval=0,size=6,n=6 -policy norepartition:DominantMinRatio
//
// The scenario JSON format is:
//
//	{"platform": {"processors": 256, "cacheSize": 32e9, "ls": 0.17,
//	   "ll": 1, "alpha": 0.5},
//	 "apps": [{"name": "CG", "work": 5.7e10, "seq": 0.05, "freq": 0.535,
//	   "missRate": 6.59e-4, "refCache": 4e7}, ...],
//	 "arrivals": {"process": "poisson", "rate": 0.002, "n": 64},
//	 "policy": "DominantMinRatio", "duration": 0, "maxResident": 8,
//	 "seed": 42}
//
// Flags override the corresponding scenario fields; without -scenario
// the built-in NPB template applications are used. Arrival processes:
// poisson, ipoisson (sinusoidal intensity via thinning), gamma
// (bursts), batch, replay (explicit times in JSON) and trace (gaps
// derived from an internal/trace access stream). Policies: any
// concurrent heuristic name, "portfolio", or "norepartition[:H]".
//
// Output is NDJSON on stdout: one line per event (arrival, start,
// finish, repartition) followed by one summary line ("kind":
// "summary"). -events=false suppresses the event stream; -gantt draws
// an ASCII timeline of waits and runs on stderr.
//
// With -fleet the scenario is a multi-node fleet spec (see
// internal/fleet): a node list, a routing policy and one fleet-wide
// arrival stream. Every arrival is routed to a node — least-loaded,
// cache-affinity, power-of-two-choices or join-shortest-queue — and
// each node runs the single-node simulator with its own platform and
// policy. Output becomes one "route" line per routing decision, one
// "node" line per node and a trailing "fleet-summary" line:
//
//	dessim -fleet -scenario fleet.json
//	dessim -fleet -routing cache-affinity -arrivals poisson:rate=0.002,n=64
//
// Without -scenario, -fleet simulates two identical TaihuLight nodes
// over the NPB templates. -policy, -maxresident and -gantt are
// single-node flags and are rejected with -fleet (use the spec's
// per-node fields).
//
// Observability: -json appends one "kind": "metrics" NDJSON line with
// the full metrics snapshot; -metrics FILE writes the Prometheus text
// exposition; -trace FILE writes the simulator's span/event log as
// NDJSON; -debug-addr HOST:PORT serves /metrics, /debug/pprof/* and
// /debug/vars while the run is in flight; -cpuprofile/-memprofile
// write pprof profiles. All of these are off by default and cost
// nothing when unset — instrumentation only records, so an
// instrumented run's event stream is bit-identical to a bare one.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"

	repro "repro"
	"repro/internal/des"
	"repro/internal/fleet"
	"repro/internal/obs"
	"repro/internal/selector"
	"repro/internal/sim"
)

func main() {
	// Ctrl-C cancels the context; the simulator's event loop polls it
	// every few events, so even very long online runs exit promptly.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	go func() {
		// After the first signal cancels ctx, restore the default
		// disposition so a second Ctrl-C force-kills even if some path
		// cannot observe the cancellation (e.g. blocked on stdin).
		<-ctx.Done()
		stop()
	}()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "dessim:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, out, errOut io.Writer) (err error) {
	fs := flag.NewFlagSet("dessim", flag.ContinueOnError)
	fs.SetOutput(errOut)
	var (
		scenario  = fs.String("scenario", "", "scenario JSON file ('-' reads stdin)")
		arrivals  = fs.String("arrivals", "", `arrival spec, e.g. "poisson:rate=0.002,n=64" (overrides scenario)`)
		policy    = fs.String("policy", "", `online policy: heuristic name, "portfolio" or "norepartition[:H]" (overrides scenario)`)
		duration  = fs.Float64("duration", -1, "cut off arrivals after this virtual time (-1 keeps scenario value, 0 = no cutoff)")
		maxRes    = fs.Int("maxresident", -1, "max jobs sharing the node, rest queue FIFO (-1 keeps scenario value, 0 = unlimited)")
		seed      = fs.Uint64("seed", 0, "seed for arrivals and randomized policies (0 keeps scenario value)")
		workers   = fs.Int("workers", 0, "portfolio policy worker pool (0 = GOMAXPROCS)")
		fleetRun  = fs.Bool("fleet", false, "simulate a multi-node fleet (scenario JSON is the fleet spec format)")
		routing   = fs.String("routing", "", "fleet routing policy: least-loaded, cache-affinity, power-of-two-choices or join-shortest-queue (overrides scenario)")
		ledgerP   = fs.String("selector", "", `win-rate ledger JSON backing a "portfolio:selector" policy (see cmd/ledger)`)
		events    = fs.Bool("events", true, "stream one NDJSON line per event")
		gantt     = fs.Bool("gantt", false, "draw an ASCII wait/run timeline on stderr")
		jsonOut   = fs.Bool("json", false, `append one "kind":"metrics" NDJSON line with the full metrics snapshot`)
		promPath  = fs.String("metrics", "", "write the Prometheus text exposition to this file on exit")
		tracePath = fs.String("trace", "", "write the simulator span/event log to this file as NDJSON")
		debugAddr = fs.String("debug-addr", "", `serve /metrics, /debug/pprof/* and /debug/vars on this address (e.g. "localhost:6060")`)
	)
	prof := obs.ProfileFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := prof.Start(); err != nil {
		return err
	}
	defer func() {
		if e := prof.Stop(); err == nil {
			err = e
		}
	}()

	if *routing != "" && !*fleetRun {
		return fmt.Errorf("-routing requires -fleet")
	}
	if *fleetRun {
		if *policy != "" || *maxRes >= 0 || *gantt {
			return fmt.Errorf("-policy, -maxresident and -gantt are single-node flags; with -fleet use the fleet spec's per-node fields")
		}
		return runFleet(ctx, fleetFlags{
			scenario: *scenario, arrivals: *arrivals, routing: *routing,
			duration: *duration, seed: *seed, workers: *workers,
			ledger: *ledgerP,
			events: *events, jsonOut: *jsonOut, promPath: *promPath,
			tracePath: *tracePath, debugAddr: *debugAddr,
		}, out, errOut)
	}

	sp, err := loadSpec(*scenario)
	if err != nil {
		return err
	}
	if *arrivals != "" {
		as, err := des.ParseArrivalSpec(*arrivals)
		if err != nil {
			return err
		}
		sp.Arrivals = as
	}
	if *policy != "" {
		sp.Policy = *policy
	}
	if *duration >= 0 {
		sp.Duration = *duration
	}
	if *maxRes >= 0 {
		sp.MaxResident = *maxRes
	}
	if *seed != 0 {
		sp.Seed = *seed
	}

	// Instrumentation is opt-in: the registry exists only when some flag
	// will consume it, so the default run stays zero-overhead.
	var reg *obs.Registry
	if *jsonOut || *promPath != "" || *tracePath != "" || *debugAddr != "" {
		reg = obs.NewRegistry()
	}
	var ds *obs.DebugServer
	if *debugAddr != "" {
		ds, err = obs.ServeDebug(*debugAddr, reg)
		if err != nil {
			return err
		}
		defer ds.Close() // error paths only; Close is idempotent
		fmt.Fprintf(errOut, "dessim: debug listener on http://%s\n", ds.Addr())
	}

	// One v2 client per invocation: its worker pool backs the portfolio
	// policy (when selected) via BuildWith, so -workers genuinely flows
	// through the client. No cache — online resident sets never repeat.
	client := repro.NewClient(repro.WithWorkers(*workers), repro.WithCache(false), repro.WithMetrics(reg))
	sc, err := sp.BuildWith(client.Engine(), *workers)
	if err != nil {
		return err
	}
	if *ledgerP != "" {
		// -selector implies the learned-selection policy unless the
		// spec or -policy already chose one explicitly.
		if sp.Policy == "" || sp.Policy == "portfolio" {
			sp.Policy = "portfolio:selector"
			if sc, err = sp.BuildWith(client.Engine(), *workers); err != nil {
				return err
			}
		}
		ledger, err := selector.LoadFile(*ledgerP)
		if err != nil {
			return err
		}
		if !des.ConfigureSelector(sc.Policy, ledger, selector.Thresholds{}) {
			return fmt.Errorf("-selector: policy %q has no learned-selection mode (use -policy portfolio:selector)", sc.Policy.Name())
		}
	}
	// Registration is idempotent, so this handle shares its series with
	// the client's; holding our own lets us attach the tracer.
	m := des.NewMetrics(reg)
	if m != nil && *tracePath != "" {
		m.Tracer = obs.NewTracer(0)
	}
	sc.Metrics = m
	res, err := client.SimulateOnline(ctx, sc)
	if err != nil {
		return err
	}

	// Drain-then-flush: let any in-flight scrape finish against the
	// final metric state before the summary is emitted and the process
	// exits, so a scraper polling the run never reads a torn exposition.
	if err := ds.Close(); err != nil {
		return err
	}

	enc := json.NewEncoder(out)
	if *events {
		for _, ev := range res.Events {
			if err := enc.Encode(eventJSON{
				Seq: ev.Seq, Time: ev.Time, Kind: ev.Kind.String(),
				Job: ev.Job, Name: ev.Name, Resident: ev.Resident, Queued: ev.Queued,
			}); err != nil {
				return err
			}
		}
	}
	if err := enc.Encode(summaryOf(sc, res)); err != nil {
		return err
	}
	if *jsonOut {
		if err := enc.Encode(metricsJSON{Kind: "metrics", Replan: res.Replan, Samples: reg.Snapshot()}); err != nil {
			return err
		}
	}
	if *promPath != "" {
		if err := writeProm(*promPath, reg); err != nil {
			return err
		}
	}
	if *tracePath != "" {
		if err := writeTrace(*tracePath, m.Tracer); err != nil {
			return err
		}
	}

	if *gantt {
		spans := make([]sim.Span, len(res.Jobs))
		for i, j := range res.Jobs {
			spans[i] = sim.Span{Name: j.Name, Arrival: j.Arrival, Start: j.Start, Finish: j.Finish}
		}
		if err := sim.RenderTimeline(errOut, spans, 60); err != nil {
			return err
		}
	}
	return nil
}

// loadSpec reads the scenario file, or returns an empty spec (NPB
// template, flag-driven) when no file is given.
func loadSpec(path string) (*des.Spec, error) {
	if path == "" {
		return &des.Spec{}, nil
	}
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	return des.DecodeSpec(r)
}

// metricsJSON is the trailing machine-readable line emitted by -json:
// the replan telemetry plus every metric sample of the run.
type metricsJSON struct {
	Kind    string          `json:"kind"`
	Replan  des.ReplanStats `json:"replan"`
	Samples []obs.Sample    `json:"samples"`
}

// writeProm dumps the Prometheus text exposition to path ('-' writes
// stdout).
func writeProm(path string, reg *obs.Registry) error {
	var w io.Writer = os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return reg.WriteProm(w)
}

// writeTrace dumps the tracer's span/event log as NDJSON to path ('-'
// writes stdout).
func writeTrace(path string, tr *obs.Tracer) error {
	var w io.Writer = os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return tr.WriteNDJSON(w)
}

// eventJSON is the NDJSON wire form of one log event.
type eventJSON struct {
	Seq      int     `json:"seq"`
	Time     float64 `json:"t"`
	Kind     string  `json:"kind"`
	Job      int     `json:"job"`
	Name     string  `json:"name,omitempty"`
	Resident int     `json:"resident"`
	Queued   int     `json:"queued"`
}

// summaryJSON is the final NDJSON line of a run.
type summaryJSON struct {
	Kind          string  `json:"kind"`
	Policy        string  `json:"policy"`
	Arrivals      string  `json:"arrivals"`
	Jobs          int     `json:"jobs"`
	Truncated     int     `json:"truncated,omitempty"`
	Makespan      float64 `json:"makespan"`
	Utilization   float64 `json:"utilization"`
	CacheOccupied float64 `json:"meanCacheOccupancy"`
	MeanQueue     float64 `json:"meanQueueLength"`
	MaxQueue      int     `json:"maxQueueLength"`
	Repartitions  int     `json:"repartitions"`
	MeanWait      float64 `json:"meanWait"`
	MaxWait       float64 `json:"maxWait"`
	MeanResponse  float64 `json:"meanResponse"`
	MaxResponse   float64 `json:"maxResponse"`
	MeanStretch   float64 `json:"meanStretch"`
	MaxStretch    float64 `json:"maxStretch"`
	// Replan reports the delta-rescheduling telemetry: fast-path vs
	// full-solve allocation counts and plan-memo traffic.
	Replan des.ReplanStats `json:"replan"`
}

func summaryOf(sc des.Scenario, res *des.Result) summaryJSON {
	return summaryJSON{
		Kind:          "summary",
		Policy:        sc.Policy.Name(),
		Arrivals:      sc.Arrivals.Name(),
		Jobs:          len(res.Jobs),
		Truncated:     res.Truncated,
		Replan:        res.Replan,
		Makespan:      res.Makespan,
		Utilization:   res.Utilization(sc.Platform),
		CacheOccupied: res.MeanCacheOccupancy(),
		MeanQueue:     res.MeanQueueLength(),
		MaxQueue:      res.MaxQueue,
		Repartitions:  res.Repartitions,
		MeanWait:      res.Wait.Mean,
		MaxWait:       res.Wait.Max,
		MeanResponse:  res.Response.Mean,
		MaxResponse:   res.Response.Max,
		MeanStretch:   res.Stretch.Mean,
		MaxStretch:    res.Stretch.Max,
	}
}

// fleetFlags carries the flag values the fleet mode consumes.
type fleetFlags struct {
	scenario, arrivals, routing    string
	duration                       float64
	seed                           uint64
	workers                        int
	ledger                         string
	events, jsonOut                bool
	promPath, tracePath, debugAddr string
}

// runFleet simulates a multi-node fleet: the scenario is the fleet
// spec format, the output one "route" NDJSON line per routing
// decision, one "node" line per node and a trailing "fleet-summary".
func runFleet(ctx context.Context, f fleetFlags, out, errOut io.Writer) error {
	sp, err := loadFleetSpec(f.scenario)
	if err != nil {
		return err
	}
	if f.arrivals != "" {
		as, err := des.ParseArrivalSpec(f.arrivals)
		if err != nil {
			return err
		}
		sp.Arrivals = as
	}
	if f.routing != "" {
		sp.Routing = f.routing
	}
	if f.duration >= 0 {
		sp.Duration = f.duration
	}
	if f.seed != 0 {
		sp.Seed = f.seed
	}

	var reg *obs.Registry
	if f.jsonOut || f.promPath != "" || f.tracePath != "" || f.debugAddr != "" {
		reg = obs.NewRegistry()
	}
	var ds *obs.DebugServer
	if f.debugAddr != "" {
		ds, err = obs.ServeDebug(f.debugAddr, reg)
		if err != nil {
			return err
		}
		defer ds.Close() // error paths only; Close is idempotent
		fmt.Fprintf(errOut, "dessim: debug listener on http://%s\n", ds.Addr())
	}

	// The client's pool backs every "portfolio" node policy, so -workers
	// bounds the whole fleet's policy parallelism through one semaphore.
	client := repro.NewClient(repro.WithWorkers(f.workers), repro.WithCache(false), repro.WithMetrics(reg))
	sc, err := sp.BuildWith(client.Engine(), f.workers)
	if err != nil {
		return err
	}
	if f.ledger != "" {
		if sc.Ledger, err = selector.LoadFile(f.ledger); err != nil {
			return err
		}
	}
	m := des.NewMetrics(reg)
	if m != nil && f.tracePath != "" {
		m.Tracer = obs.NewTracer(0)
	}
	sc.Metrics = m
	res, err := client.SimulateFleet(ctx, sc)
	if err != nil {
		return err
	}

	// Drain-then-flush, exactly like the single-node path.
	if err := ds.Close(); err != nil {
		return err
	}

	enc := json.NewEncoder(out)
	if f.events {
		for _, rt := range res.Routes {
			if err := enc.Encode(routeJSON{
				Kind: "route", Job: rt.Job, Time: rt.Time,
				Node: rt.Node, Name: res.Nodes[rt.Node].Name,
			}); err != nil {
				return err
			}
		}
	}
	totalProcs := 0.0
	var replan des.ReplanStats
	for i := range res.Nodes {
		totalProcs += sc.Nodes[i].Platform.Processors
		replan.Add(res.Nodes[i].Result.Replan)
		if err := enc.Encode(nodeJSON{
			Kind: "node", Name: res.Nodes[i].Name, Jobs: res.Nodes[i].Jobs,
			Makespan:     res.Nodes[i].Result.Makespan,
			Utilization:  res.Nodes[i].Result.Utilization(sc.Nodes[i].Platform),
			Repartitions: res.Nodes[i].Result.Repartitions,
		}); err != nil {
			return err
		}
	}
	if err := enc.Encode(fleetSummaryJSON{
		Kind: "fleet-summary", Routing: res.Routing, Arrivals: sc.Arrivals.Name(),
		Nodes: len(res.Nodes), Jobs: res.Jobs, Truncated: res.Truncated,
		Makespan: res.Makespan, Utilization: res.Utilization(totalProcs),
		MeanWait: res.Wait.Mean, MaxWait: res.Wait.Max,
		MeanResponse: res.Response.Mean, MaxResponse: res.Response.Max,
		MeanStretch: res.Stretch.Mean, MaxStretch: res.Stretch.Max,
		Replan: replan,
	}); err != nil {
		return err
	}
	if f.jsonOut {
		if err := enc.Encode(metricsJSON{Kind: "metrics", Replan: replan, Samples: reg.Snapshot()}); err != nil {
			return err
		}
	}
	if f.promPath != "" {
		if err := writeProm(f.promPath, reg); err != nil {
			return err
		}
	}
	if f.tracePath != "" {
		if err := writeTrace(f.tracePath, m.Tracer); err != nil {
			return err
		}
	}
	return nil
}

// loadFleetSpec reads the fleet scenario file, or returns the default
// two-node fleet (identical TaihuLight nodes, NPB templates,
// flag-driven arrivals) when no file is given.
func loadFleetSpec(path string) (*fleet.Spec, error) {
	if path == "" {
		return &fleet.Spec{Nodes: []fleet.NodeSpec{{}, {}}}, nil
	}
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	return fleet.DecodeSpec(r)
}

// routeJSON is the NDJSON wire form of one routing decision.
type routeJSON struct {
	Kind string  `json:"kind"`
	Job  int     `json:"job"`
	Time float64 `json:"t"`
	Node int     `json:"node"`
	Name string  `json:"name"`
}

// nodeJSON is the NDJSON wire form of one node's outcome.
type nodeJSON struct {
	Kind         string  `json:"kind"`
	Name         string  `json:"name"`
	Jobs         int     `json:"jobs"`
	Makespan     float64 `json:"makespan"`
	Utilization  float64 `json:"utilization"`
	Repartitions int     `json:"repartitions"`
}

// fleetSummaryJSON is the final NDJSON line of a fleet run.
type fleetSummaryJSON struct {
	Kind         string          `json:"kind"`
	Routing      string          `json:"routing"`
	Arrivals     string          `json:"arrivals"`
	Nodes        int             `json:"nodes"`
	Jobs         int             `json:"jobs"`
	Truncated    int             `json:"truncated,omitempty"`
	Makespan     float64         `json:"makespan"`
	Utilization  float64         `json:"utilization"`
	MeanWait     float64         `json:"meanWait"`
	MaxWait      float64         `json:"maxWait"`
	MeanResponse float64         `json:"meanResponse"`
	MaxResponse  float64         `json:"maxResponse"`
	MeanStretch  float64         `json:"meanStretch"`
	MaxStretch   float64         `json:"maxStretch"`
	Replan       des.ReplanStats `json:"replan"`
}
