// Command cachesim exercises the substituted measurement pipeline of the
// reproduction: synthetic memory traces are run through the
// way-partitioned LRU cache simulator across a sweep of cache sizes, and
// the Power Law of Cache Misses (m = m0 (C0/C)^α) is fitted to the
// resulting curve — the role PEBIL instrumentation played for the paper's
// Table 2.
//
// Usage:
//
//	cachesim                      # sweep all built-in trace classes
//	cachesim -trace zipf -s 0.9   # one class with a custom exponent
//	cachesim -accesses 2000000    # longer measurement window
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"text/tabwriter"

	"repro/internal/cachesim"
	"repro/internal/solve"
	"repro/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "cachesim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("cachesim", flag.ContinueOnError)
	var (
		traceName = fs.String("trace", "", "trace class to run (sequential, uniform, zipf, workingset); empty = all")
		zipfS     = fs.Float64("s", 0.8, "zipf exponent")
		footprint = fs.Uint64("footprint", 64<<20, "trace footprint in bytes")
		line      = fs.Uint64("line", 64, "cache line size in bytes")
		ways      = fs.Int("ways", 16, "cache associativity")
		warmup    = fs.Int("warmup", 200000, "warm-up accesses discarded before measuring")
		accesses  = fs.Int("accesses", 500000, "measured accesses per cache size")
		seed      = fs.Uint64("seed", 7, "random seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	// Cache sizes from 256 KB to 32 MB, power-of-two steps.
	var sizes []uint64
	for s := uint64(256 << 10); s <= 32<<20; s <<= 1 {
		sizes = append(sizes, s)
	}

	classes := []string{"sequential", "uniform", "zipf", "workingset"}
	if *traceName != "" {
		classes = []string{*traceName}
	}

	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "trace\tm0@40MB\talpha\tR²")
	for _, class := range classes {
		mk, err := makeGenFactory(class, *footprint, *line, *zipfS, *seed)
		if err != nil {
			return err
		}
		pts, err := cachesim.Sweep(sizes, *line, *ways, mk, *warmup, *accesses)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "%s miss curve:\n", class)
		for _, p := range pts {
			fmt.Fprintf(out, "  %8.2f MB  miss %.4f\n", float64(p.CacheBytes)/(1<<20), p.MissRate)
		}
		fit, err := cachesim.FitPowerLaw(pts, 40e6)
		if err != nil {
			fmt.Fprintf(out, "  power-law fit unavailable: %v\n", err)
			continue
		}
		fmt.Fprintf(tw, "%s\t%.3E\t%.3f\t%.3f\n", class, fit.M0, fit.Alpha, fit.R2)
	}
	tw.Flush()
	return nil
}

func makeGenFactory(class string, footprint, line uint64, zipfS float64, seed uint64) (func() trace.Generator, error) {
	// Validate the parameters once so the factory itself cannot fail
	// (Sweep calls it from worker goroutines).
	build := func() (trace.Generator, error) {
		switch class {
		case "sequential":
			return trace.NewSequential(footprint, line)
		case "uniform":
			return trace.NewUniform(footprint, line, solve.NewRNG(seed))
		case "zipf":
			return trace.NewZipf(footprint, line, zipfS, solve.NewRNG(seed))
		case "workingset":
			return trace.NewWorkingSet(footprint, line, footprint/16, 0.9, 100000, solve.NewRNG(seed))
		default:
			return nil, fmt.Errorf("unknown trace class %q", class)
		}
	}
	if _, err := build(); err != nil {
		return nil, err
	}
	return func() trace.Generator {
		g, _ := build()
		return g
	}, nil
}
