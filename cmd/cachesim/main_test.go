package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunZipfOnly(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-trace", "zipf", "-footprint", "4194304",
		"-warmup", "5000", "-accesses", "20000",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "zipf miss curve:") {
		t.Fatalf("miss curve missing:\n%s", s)
	}
	if !strings.Contains(s, "m0@40MB") {
		t.Fatalf("fit table missing:\n%s", s)
	}
}

func TestRunUnknownTrace(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-trace", "fractal"}, &out); err == nil {
		t.Fatal("unknown trace class accepted")
	}
}

func TestRunBadFlagRejected(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-bogus"}, &out); err == nil {
		t.Fatal("unknown flag accepted")
	}
}

func TestMakeGenFactoryValidatesOnce(t *testing.T) {
	// Invalid geometry must surface at factory construction, not inside
	// the sweep's worker goroutines.
	if _, err := makeGenFactory("uniform", 32, 64, 0.8, 1); err == nil {
		t.Fatal("footprint below line accepted")
	}
	mk, err := makeGenFactory("sequential", 1<<20, 64, 0.8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g := mk(); g == nil || g.Name() != "sequential" {
		t.Fatal("factory returned wrong generator")
	}
}
