package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunDefaultNPB(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-seq", "0.05"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"DominantMinRatio", "makespan:", "CG", "FT"} {
		if !strings.Contains(s, want) {
			t.Fatalf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRunList(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"DominantMinRatio", "AllProcCache", "SharedCache", "LocalSearch"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("list missing %q", want)
		}
	}
}

func TestRunUnknownHeuristic(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-heuristic", "Bogus"}, &out); err == nil {
		t.Fatal("unknown heuristic accepted")
	}
}

func TestRunWaysAndInt(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-seq", "0.05", "-ways", "20", "-int"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "CAT realization on 20 ways") {
		t.Fatalf("missing CAT section:\n%s", s)
	}
	if !strings.Contains(s, "whole-processor realization") {
		t.Fatalf("missing integer section:\n%s", s)
	}
}

func TestRunSimAndGantt(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-seq", "0.05", "-sim", "-gantt"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "DES cross-check") || !strings.Contains(s, "█") {
		t.Fatalf("missing sim/gantt output:\n%s", s)
	}
}

func TestRunLocalSearch(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-seq", "0.05", "-localsearch"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "local search") {
		t.Fatal("local search message missing")
	}
}

func TestRunJSONOutputAndCustomApps(t *testing.T) {
	dir := t.TempDir()
	appsPath := filepath.Join(dir, "apps.json")
	fleet := `[
		{"name": "a", "work": 1e10, "seq": 0.05, "freq": 0.5, "missRate": 1e-3, "refCache": 4e7},
		{"name": "b", "work": 2e10, "seq": 0.02, "freq": 0.7, "missRate": 5e-3, "refCache": 4e7}
	]`
	if err := os.WriteFile(appsPath, []byte(fleet), 0o644); err != nil {
		t.Fatal(err)
	}
	jsonPath := filepath.Join(dir, "sched.json")
	var out bytes.Buffer
	if err := run([]string{"-apps", appsPath, "-json", jsonPath}, &out); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"heuristic": "DominantMinRatio"`, `"app": "a"`, `"app": "b"`} {
		if !strings.Contains(string(raw), want) {
			t.Fatalf("schedule JSON missing %q:\n%s", want, raw)
		}
	}
}

func TestRunJSONToStdout(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-seq", "0.05", "-json", "-"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `"assignments"`) {
		t.Fatal("JSON not written to stdout")
	}
}

func TestRunBadAppsFile(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-apps", "/nonexistent.json"}, &out); err == nil {
		t.Fatal("missing file accepted")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-apps", bad}, &out); err == nil {
		t.Fatal("malformed JSON accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-nope"}, &out); err == nil {
		t.Fatal("unknown flag accepted")
	}
}
