package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunDefaultNPB(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-seq", "0.05"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"DominantMinRatio", "makespan:", "CG", "FT"} {
		if !strings.Contains(s, want) {
			t.Fatalf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRunList(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"DominantMinRatio", "AllProcCache", "SharedCache", "LocalSearch"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("list missing %q", want)
		}
	}
}

func TestRunUnknownHeuristic(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-heuristic", "Bogus"}, &out); err == nil {
		t.Fatal("unknown heuristic accepted")
	}
}

func TestRunWaysAndInt(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-seq", "0.05", "-ways", "20", "-int"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "CAT realization on 20 ways") {
		t.Fatalf("missing CAT section:\n%s", s)
	}
	if !strings.Contains(s, "whole-processor realization") {
		t.Fatalf("missing integer section:\n%s", s)
	}
}

func TestRunSimAndGantt(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-seq", "0.05", "-sim", "-gantt"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "DES cross-check") || !strings.Contains(s, "█") {
		t.Fatalf("missing sim/gantt output:\n%s", s)
	}
}

func TestRunLocalSearch(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-seq", "0.05", "-localsearch"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "local search") {
		t.Fatal("local search message missing")
	}
}

func TestRunJSONOutputAndCustomApps(t *testing.T) {
	dir := t.TempDir()
	appsPath := filepath.Join(dir, "apps.json")
	fleet := `[
		{"name": "a", "work": 1e10, "seq": 0.05, "freq": 0.5, "missRate": 1e-3, "refCache": 4e7},
		{"name": "b", "work": 2e10, "seq": 0.02, "freq": 0.7, "missRate": 5e-3, "refCache": 4e7}
	]`
	if err := os.WriteFile(appsPath, []byte(fleet), 0o644); err != nil {
		t.Fatal(err)
	}
	jsonPath := filepath.Join(dir, "sched.json")
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-apps", appsPath, "-json", jsonPath}, &out); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"heuristic": "DominantMinRatio"`, `"app": "a"`, `"app": "b"`} {
		if !strings.Contains(string(raw), want) {
			t.Fatalf("schedule JSON missing %q:\n%s", want, raw)
		}
	}
}

func TestRunJSONToStdout(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-seq", "0.05", "-json", "-"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `"assignments"`) {
		t.Fatal("JSON not written to stdout")
	}
}

func TestRunBadAppsFile(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-apps", "/nonexistent.json"}, &out); err == nil {
		t.Fatal("missing file accepted")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), []string{"-apps", bad}, &out); err == nil {
		t.Fatal("malformed JSON accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-nope"}, &out); err == nil {
		t.Fatal("unknown flag accepted")
	}
}

func TestRunPortfolio(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-portfolio", "-workers", "4", "-seq", "0.05", "-ways", "20"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"12 heuristics raced", "rank", "vs best", "makespan:", "CAT realization on 20 ways"} {
		if !strings.Contains(s, want) {
			t.Fatalf("portfolio output missing %q:\n%s", want, s)
		}
	}
	// AllProcCache can never beat the co-scheduling policies on NPB, so
	// it must not be the heuristic the downstream sections ran with.
	if strings.Contains(s, "heuristic: AllProcCache") {
		t.Fatalf("portfolio picked the sequential baseline as best:\n%s", s)
	}
}

func TestRunBatch(t *testing.T) {
	dir := t.TempDir()
	batchPath := filepath.Join(dir, "batch.json")
	batch := `[
		{"apps": [
			{"name": "a", "work": 1e10, "seq": 0.05, "freq": 0.5, "missRate": 1e-3, "refCache": 4e7},
			{"name": "b", "work": 2e10, "seq": 0.02, "freq": 0.7, "missRate": 5e-3, "refCache": 4e7}
		], "heuristics": ["DominantMinRatio", "Fair"], "seed": 7},
		{"apps": [
			{"name": "a", "work": 1e10, "seq": 0.05, "freq": 0.5, "missRate": 1e-3, "refCache": 4e7},
			{"name": "b", "work": 2e10, "seq": 0.02, "freq": 0.7, "missRate": 5e-3, "refCache": 4e7}
		], "heuristics": ["DominantMinRatio", "Fair"], "seed": 8},
		{"platform": {"processors": -1}, "apps": []}
	]`
	if err := os.WriteFile(batchPath, []byte(batch), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-batch", batchPath, "-workers", "2"}, &out); err != nil {
		t.Fatal(err)
	}
	reports := decodeReports(t, out.String())
	if len(reports) != 3 {
		t.Fatalf("%d reports for 3 scenarios", len(reports))
	}
	if reports[0].Best != "DominantMinRatio" || len(reports[0].Results) != 2 {
		t.Fatalf("unexpected first report: %+v", reports[0])
	}
	// Scenarios 1 and 2 differ only in seed; their deterministic
	// heuristics must agree, and exactly one evaluation per heuristic
	// must have come from the memoization cache.
	fromCache := 0
	for hi := range reports[0].Results {
		if reports[0].Results[hi].Makespan != reports[1].Results[hi].Makespan {
			t.Fatalf("deterministic heuristic diverged across identical scenarios")
		}
		for _, rep := range reports[:2] {
			if rep.Results[hi].FromCache {
				fromCache++
			}
		}
	}
	if fromCache != 2 {
		t.Fatalf("%d cached evaluations, want 2 (one per heuristic)", fromCache)
	}
	if reports[2].Error == "" {
		t.Fatal("invalid scenario accepted")
	}
}

func TestRunPortfolioFlagConflicts(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-portfolio", "-localsearch"}, &out); err == nil {
		t.Fatal("-portfolio -localsearch combination accepted")
	}
	if err := run(context.Background(), []string{"-portfolio", "-heuristic", "Bogus"}, &out); err == nil {
		t.Fatal("-portfolio with unknown -heuristic accepted")
	}
}

// batchReport mirrors the NDJSON report line of -batch output.
type batchReport struct {
	Best    string `json:"best"`
	Results []struct {
		Heuristic string  `json:"heuristic"`
		Makespan  float64 `json:"makespan"`
		FromCache bool    `json:"fromCache"`
	} `json:"results"`
	Error string `json:"error"`
}

// decodeReports parses -batch NDJSON output: one report per line.
func decodeReports(t *testing.T, out string) []batchReport {
	t.Helper()
	var reports []batchReport
	for i, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		var rep batchReport
		if err := json.Unmarshal([]byte(line), &rep); err != nil {
			t.Fatalf("batch output line %d is not JSON: %v\n%s", i, err, line)
		}
		reports = append(reports, rep)
	}
	return reports
}

// TestRunBatchNDJSONInput: a bare NDJSON stream of scenario objects is
// accepted alongside the array form, and reports stream in input order.
func TestRunBatchNDJSONInput(t *testing.T) {
	dir := t.TempDir()
	batchPath := filepath.Join(dir, "batch.ndjson")
	batch := `{"apps": [{"name": "a", "work": 1e10, "seq": 0.05, "freq": 0.5, "missRate": 1e-3, "refCache": 4e7}], "heuristics": ["DominantMinRatio"]}
{"apps": [{"name": "b", "work": 2e10, "seq": 0.02, "freq": 0.7, "missRate": 5e-3, "refCache": 4e7}], "heuristics": ["Fair"]}
`
	if err := os.WriteFile(batchPath, []byte(batch), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-batch", batchPath}, &out); err != nil {
		t.Fatal(err)
	}
	reports := decodeReports(t, out.String())
	if len(reports) != 2 {
		t.Fatalf("%d reports for 2 scenarios", len(reports))
	}
	if reports[0].Best != "DominantMinRatio" || reports[1].Best != "Fair" {
		t.Fatalf("reports out of order: %q then %q", reports[0].Best, reports[1].Best)
	}
}

// failWriter errors after its first successful write, standing in for
// a consumer that goes away mid-stream.
type failWriter struct{ writes int }

func (w *failWriter) Write(p []byte) (int, error) {
	w.writes++
	if w.writes > 1 {
		return 0, fmt.Errorf("pipe closed")
	}
	return len(p), nil
}

// TestRunBatchOutputFailure: a dying output writer must surface as an
// error promptly — the decoder stops emitting instead of evaluating
// the rest of the batch into the void.
func TestRunBatchOutputFailure(t *testing.T) {
	dir := t.TempDir()
	batchPath := filepath.Join(dir, "batch.json")
	one := `{"apps": [{"name": "a", "work": 1e10, "seq": 0.05, "freq": 0.5, "missRate": 1e-3, "refCache": 4e7}], "heuristics": ["Fair"]}`
	batch := "[" + one + "," + one + "," + one + "," + one + "," + one + "]"
	if err := os.WriteFile(batchPath, []byte(batch), 0o644); err != nil {
		t.Fatal(err)
	}
	w := &failWriter{}
	if err := run(context.Background(), []string{"-batch", batchPath, "-workers", "1"}, w); err == nil {
		t.Fatal("failing writer not reported")
	}
}

func TestRunBatchBadInput(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-batch", "/nonexistent.json"}, &out); err == nil {
		t.Fatal("missing batch file accepted")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`[{"heuristics": ["Bogus"], "apps": []}]`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), []string{"-batch", bad}, &out); err == nil {
		t.Fatal("unknown heuristic in batch accepted")
	}
	trailing := filepath.Join(dir, "trailing.json")
	if err := os.WriteFile(trailing, []byte(`[{"apps": [{"name": "a", "work": 1e10, "seq": 0.05, "freq": 0.5, "missRate": 1e-3, "refCache": 4e7}]}] {"oops": 1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), []string{"-batch", trailing}, &out); err == nil {
		t.Fatal("trailing data after the scenario array accepted")
	}
}
