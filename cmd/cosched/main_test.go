package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunDefaultNPB(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-seq", "0.05"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"DominantMinRatio", "makespan:", "CG", "FT"} {
		if !strings.Contains(s, want) {
			t.Fatalf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRunList(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"DominantMinRatio", "AllProcCache", "SharedCache", "LocalSearch"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("list missing %q", want)
		}
	}
}

func TestRunUnknownHeuristic(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-heuristic", "Bogus"}, &out); err == nil {
		t.Fatal("unknown heuristic accepted")
	}
}

func TestRunWaysAndInt(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-seq", "0.05", "-ways", "20", "-int"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "CAT realization on 20 ways") {
		t.Fatalf("missing CAT section:\n%s", s)
	}
	if !strings.Contains(s, "whole-processor realization") {
		t.Fatalf("missing integer section:\n%s", s)
	}
}

func TestRunSimAndGantt(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-seq", "0.05", "-sim", "-gantt"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "DES cross-check") || !strings.Contains(s, "█") {
		t.Fatalf("missing sim/gantt output:\n%s", s)
	}
}

func TestRunLocalSearch(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-seq", "0.05", "-localsearch"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "local search") {
		t.Fatal("local search message missing")
	}
}

func TestRunJSONOutputAndCustomApps(t *testing.T) {
	dir := t.TempDir()
	appsPath := filepath.Join(dir, "apps.json")
	fleet := `[
		{"name": "a", "work": 1e10, "seq": 0.05, "freq": 0.5, "missRate": 1e-3, "refCache": 4e7},
		{"name": "b", "work": 2e10, "seq": 0.02, "freq": 0.7, "missRate": 5e-3, "refCache": 4e7}
	]`
	if err := os.WriteFile(appsPath, []byte(fleet), 0o644); err != nil {
		t.Fatal(err)
	}
	jsonPath := filepath.Join(dir, "sched.json")
	var out bytes.Buffer
	if err := run([]string{"-apps", appsPath, "-json", jsonPath}, &out); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"heuristic": "DominantMinRatio"`, `"app": "a"`, `"app": "b"`} {
		if !strings.Contains(string(raw), want) {
			t.Fatalf("schedule JSON missing %q:\n%s", want, raw)
		}
	}
}

func TestRunJSONToStdout(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-seq", "0.05", "-json", "-"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `"assignments"`) {
		t.Fatal("JSON not written to stdout")
	}
}

func TestRunBadAppsFile(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-apps", "/nonexistent.json"}, &out); err == nil {
		t.Fatal("missing file accepted")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-apps", bad}, &out); err == nil {
		t.Fatal("malformed JSON accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-nope"}, &out); err == nil {
		t.Fatal("unknown flag accepted")
	}
}

func TestRunPortfolio(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-portfolio", "-workers", "4", "-seq", "0.05", "-ways", "20"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"12 heuristics raced", "rank", "vs best", "makespan:", "CAT realization on 20 ways"} {
		if !strings.Contains(s, want) {
			t.Fatalf("portfolio output missing %q:\n%s", want, s)
		}
	}
	// AllProcCache can never beat the co-scheduling policies on NPB, so
	// it must not be the heuristic the downstream sections ran with.
	if strings.Contains(s, "heuristic: AllProcCache") {
		t.Fatalf("portfolio picked the sequential baseline as best:\n%s", s)
	}
}

func TestRunBatch(t *testing.T) {
	dir := t.TempDir()
	batchPath := filepath.Join(dir, "batch.json")
	batch := `[
		{"apps": [
			{"name": "a", "work": 1e10, "seq": 0.05, "freq": 0.5, "missRate": 1e-3, "refCache": 4e7},
			{"name": "b", "work": 2e10, "seq": 0.02, "freq": 0.7, "missRate": 5e-3, "refCache": 4e7}
		], "heuristics": ["DominantMinRatio", "Fair"], "seed": 7},
		{"apps": [
			{"name": "a", "work": 1e10, "seq": 0.05, "freq": 0.5, "missRate": 1e-3, "refCache": 4e7},
			{"name": "b", "work": 2e10, "seq": 0.02, "freq": 0.7, "missRate": 5e-3, "refCache": 4e7}
		], "heuristics": ["DominantMinRatio", "Fair"], "seed": 8},
		{"platform": {"processors": -1}, "apps": []}
	]`
	if err := os.WriteFile(batchPath, []byte(batch), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"-batch", batchPath, "-workers", "2"}, &out); err != nil {
		t.Fatal(err)
	}
	var reports []struct {
		Best    string `json:"best"`
		Results []struct {
			Heuristic string  `json:"heuristic"`
			Makespan  float64 `json:"makespan"`
			FromCache bool    `json:"fromCache"`
		} `json:"results"`
		Error string `json:"error"`
	}
	if err := json.Unmarshal(out.Bytes(), &reports); err != nil {
		t.Fatalf("batch output is not JSON: %v\n%s", err, out.String())
	}
	if len(reports) != 3 {
		t.Fatalf("%d reports for 3 scenarios", len(reports))
	}
	if reports[0].Best != "DominantMinRatio" || len(reports[0].Results) != 2 {
		t.Fatalf("unexpected first report: %+v", reports[0])
	}
	// Scenarios 1 and 2 differ only in seed; their deterministic
	// heuristics must agree, and exactly one evaluation per heuristic
	// must have come from the memoization cache.
	fromCache := 0
	for hi := range reports[0].Results {
		if reports[0].Results[hi].Makespan != reports[1].Results[hi].Makespan {
			t.Fatalf("deterministic heuristic diverged across identical scenarios")
		}
		for _, rep := range reports[:2] {
			if rep.Results[hi].FromCache {
				fromCache++
			}
		}
	}
	if fromCache != 2 {
		t.Fatalf("%d cached evaluations, want 2 (one per heuristic)", fromCache)
	}
	if reports[2].Error == "" {
		t.Fatal("invalid scenario accepted")
	}
}

func TestRunPortfolioFlagConflicts(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-portfolio", "-localsearch"}, &out); err == nil {
		t.Fatal("-portfolio -localsearch combination accepted")
	}
	if err := run([]string{"-portfolio", "-heuristic", "Bogus"}, &out); err == nil {
		t.Fatal("-portfolio with unknown -heuristic accepted")
	}
}

func TestRunBatchBadInput(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-batch", "/nonexistent.json"}, &out); err == nil {
		t.Fatal("missing batch file accepted")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`[{"heuristics": ["Bogus"], "apps": []}]`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-batch", bad}, &out); err == nil {
		t.Fatal("unknown heuristic in batch accepted")
	}
}
