// Command cosched computes a co-schedule for a set of applications on a
// cache-partitioned platform and prints the resource assignment,
// per-application finish times and (optionally) the Intel CAT way masks
// realizing the cache partition.
//
// Usage:
//
//	cosched [flags]
//	cosched -apps apps.json -heuristic DominantMinRatio -ways 20
//
// Without -apps the built-in NPB workload of the paper's Table 2 is used.
// The JSON application format is an array of objects:
//
//	[{"name": "CG", "work": 5.7e10, "seq": 0.05, "freq": 0.535,
//	  "missRate": 6.59e-4, "refCache": 4e7, "footprint": 0}, ...]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"text/tabwriter"

	"repro/internal/cat"
	"repro/internal/model"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/solve"
	"repro/internal/workload"
)

type appJSON struct {
	Name      string  `json:"name"`
	Work      float64 `json:"work"`
	Seq       float64 `json:"seq"`
	Freq      float64 `json:"freq"`
	MissRate  float64 `json:"missRate"`
	RefCache  float64 `json:"refCache"`
	Footprint float64 `json:"footprint"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "cosched:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("cosched", flag.ContinueOnError)
	var (
		appsPath  = fs.String("apps", "", "JSON file of applications (default: built-in NPB Table 2)")
		heuristic = fs.String("heuristic", "DominantMinRatio", "scheduling policy (see -list)")
		list      = fs.Bool("list", false, "list available heuristics and exit")
		procs     = fs.Float64("p", 256, "processor count")
		cache     = fs.Float64("cache", 32000e6, "LLC size in bytes")
		ls        = fs.Float64("ls", 0.17, "cache access latency")
		ll        = fs.Float64("ll", 1, "cache miss (memory) latency")
		alpha     = fs.Float64("alpha", 0.5, "power-law sensitivity exponent")
		seq       = fs.Float64("seq", 0, "override sequential fraction for every application (0 keeps input values)")
		ways      = fs.Int("ways", 0, "if > 0, also print Intel CAT way masks for that many LLC ways")
		seed      = fs.Uint64("seed", 42, "seed for randomized heuristics")
		simulate  = fs.Bool("sim", false, "cross-check with the discrete-event simulator")
		gantt     = fs.Bool("gantt", false, "draw an ASCII Gantt chart of the execution")
		jsonOut   = fs.String("json", "", "write the schedule as JSON to this file ('-' for stdout)")
		integer   = fs.Bool("int", false, "also round to whole processors and report the cost")
		local     = fs.Bool("localsearch", false, "refine with Amdahl-aware membership local search")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, h := range sched.ExtendedHeuristics {
			fmt.Fprintln(out, h)
		}
		return nil
	}

	h, err := sched.ParseHeuristic(*heuristic)
	if err != nil {
		return err
	}
	pl := model.Platform{Processors: *procs, CacheSize: *cache, LatencyS: *ls, LatencyL: *ll, Alpha: *alpha}

	apps, err := loadApps(*appsPath)
	if err != nil {
		return err
	}
	if *seq > 0 {
		for i := range apps {
			apps[i].SeqFraction = *seq
		}
	}

	s, err := h.Schedule(pl, apps, solve.NewRNG(*seed))
	if err != nil {
		return err
	}
	label := h.String()
	if *local {
		refined, err := sched.LocalSearchSchedule(pl, apps, sched.LocalSearchOptions{}, solve.NewRNG(*seed))
		if err != nil {
			return err
		}
		if refined.Makespan < s.Makespan {
			fmt.Fprintf(out, "local search improved %s by %.2f%%\n", label, 100*(1-refined.Makespan/s.Makespan))
			s, label = refined, label+"+LocalSearch"
		} else {
			fmt.Fprintf(out, "local search found no improvement over %s\n", label)
		}
	}

	fmt.Fprintf(out, "heuristic: %v   platform: p=%g Cs=%.3g ls=%g ll=%g α=%g\n\n", label, pl.Processors, pl.CacheSize, pl.LatencyS, pl.LatencyL, pl.Alpha)
	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "app\tprocessors\tcache share\tfinish time")
	ft := s.FinishTimes(pl, apps)
	for i, a := range apps {
		fmt.Fprintf(tw, "%s\t%.3f\t%.4f\t%.4g\n", a.Name, s.Assignments[i].Processors, s.Assignments[i].CacheShare, ft[i])
	}
	tw.Flush()
	fmt.Fprintf(out, "\nmakespan: %.6g\n", s.Makespan)

	if *ways > 0 {
		shares := make([]float64, len(s.Assignments))
		for i, a := range s.Assignments {
			shares[i] = a.CacheShare
		}
		alloc, err := cat.Partition(shares, *ways)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "\nCAT realization on %d ways (max rounding error %.4f):\n", *ways, alloc.MaxError)
		for i, a := range apps {
			fmt.Fprintf(out, "  %-8s %s (%d ways)\n", a.Name, cat.FormatMask(alloc.Masks[i], *ways), alloc.WayCounts[i])
		}
	}

	if *integer {
		ri, err := sched.RoundProcessors(pl, apps, s)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "\nwhole-processor realization (makespan ×%.4f):\n", ri.Degradation)
		for i, a := range apps {
			fmt.Fprintf(out, "  %-8s %4d procs\n", a.Name, ri.Processors[i])
		}
	}

	if *simulate || *gantt {
		res, err := sim.Execute(pl, apps, s, sim.Static)
		if err != nil {
			return err
		}
		if *simulate {
			fmt.Fprintf(out, "\nDES cross-check: simulated makespan %.6g, utilization %.1f%%\n",
				res.Makespan, 100*res.ProcessorTime/(pl.Processors*res.Makespan))
		}
		if *gantt {
			fmt.Fprintln(out)
			if err := sim.RenderGantt(out, pl, apps, s, res, 60); err != nil {
				return err
			}
		}
	}

	if *jsonOut != "" {
		w := out
		var closer io.Closer
		if *jsonOut != "-" {
			f, err := os.Create(*jsonOut)
			if err != nil {
				return err
			}
			w, closer = f, f
		} else {
			fmt.Fprintln(out)
		}
		if err := sched.WriteJSON(w, label, pl, apps, s); err != nil {
			return err
		}
		if closer != nil {
			if err := closer.Close(); err != nil {
				return err
			}
		}
	}
	return nil
}

// loadApps reads the JSON fleet at path, or returns the built-in NPB
// workload when path is empty.
func loadApps(path string) ([]model.Application, error) {
	if path == "" {
		return workload.NPB(), nil
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var in []appJSON
	if err := json.Unmarshal(raw, &in); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	apps := make([]model.Application, 0, len(in))
	for _, a := range in {
		apps = append(apps, model.Application{
			Name: a.Name, Work: a.Work, SeqFraction: a.Seq, AccessFreq: a.Freq,
			RefMissRate: a.MissRate, RefCacheSize: a.RefCache, Footprint: a.Footprint,
		})
	}
	return apps, nil
}
