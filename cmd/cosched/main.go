// Command cosched computes a co-schedule for a set of applications on a
// cache-partitioned platform and prints the resource assignment,
// per-application finish times and (optionally) the Intel CAT way masks
// realizing the cache partition.
//
// Usage:
//
//	cosched [flags]
//	cosched -apps apps.json -heuristic DominantMinRatio -ways 20
//	cosched -portfolio -workers 8
//	cosched -batch scenarios.json -workers 8
//
// Without -apps the built-in NPB workload of the paper's Table 2 is used.
// The JSON application format is an array of objects:
//
//	[{"name": "CG", "work": 5.7e10, "seq": 0.05, "freq": 0.535,
//	  "missRate": 6.59e-4, "refCache": 4e7, "footprint": 0}, ...]
//
// With -portfolio every heuristic is raced concurrently on a bounded
// worker pool and the best schedule wins; the ranking is printed and the
// winner feeds the remaining output sections (-ways, -int, -sim, -json).
//
// With -batch the input is an array (or NDJSON stream) of scenarios
// served in one invocation ('-' reads stdin); one NDJSON report line is
// streamed per scenario, in input order, as each completes — long
// batches run in bounded memory. Scenario fields "platform",
// "heuristics" and "seed" are optional and default to the flag values:
//
//	[{"platform": {"processors": 256, "cacheSize": 32e9, "ls": 0.17,
//	   "ll": 1, "alpha": 0.5},
//	  "apps": [...], "heuristics": ["DominantMinRatio", "Fair"],
//	  "seed": 42}, ...]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"os/signal"
	"sort"
	"text/tabwriter"

	repro "repro"
	"repro/internal/cat"
	"repro/internal/des"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/selector"
	"repro/internal/serve"
	"repro/internal/sim"
	"repro/internal/solve"
	"repro/internal/workload"
)

// The application and platform wire formats are shared with the online
// simulator's scenario schema (internal/des), so the two CLIs accept
// the same JSON and cannot drift apart.

func main() {
	// Ctrl-C cancels the context; the v2 client returns ctx.Err()
	// within one in-flight heuristic evaluation, so long batches exit
	// cleanly instead of being killed mid-write.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	go func() {
		// After the first signal cancels ctx, restore the default
		// disposition so a second Ctrl-C force-kills even if some path
		// cannot observe the cancellation (e.g. blocked on stdin).
		<-ctx.Done()
		stop()
	}()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "cosched:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, out io.Writer) (err error) {
	fs := flag.NewFlagSet("cosched", flag.ContinueOnError)
	var (
		debugAddr = fs.String("debug-addr", "", `serve /metrics, /debug/pprof/* and /debug/vars on this address (e.g. "localhost:6060")`)
		appsPath  = fs.String("apps", "", "JSON file of applications (default: built-in NPB Table 2)")
		heuristic = fs.String("heuristic", "DominantMinRatio", "scheduling policy (see -list)")
		list      = fs.Bool("list", false, "list available heuristics and exit")
		procs     = fs.Float64("p", 256, "processor count")
		cache     = fs.Float64("cache", 32000e6, "LLC size in bytes")
		ls        = fs.Float64("ls", 0.17, "cache access latency")
		ll        = fs.Float64("ll", 1, "cache miss (memory) latency")
		alpha     = fs.Float64("alpha", 0.5, "power-law sensitivity exponent")
		seq       = fs.Float64("seq", 0, "override sequential fraction for every application (0 keeps input values)")
		ways      = fs.Int("ways", 0, "if > 0, also print Intel CAT way masks for that many LLC ways")
		seed      = fs.Uint64("seed", 42, "seed for randomized heuristics")
		simulate  = fs.Bool("sim", false, "cross-check with the discrete-event simulator")
		gantt     = fs.Bool("gantt", false, "draw an ASCII Gantt chart of the execution")
		jsonOut   = fs.String("json", "", "write the schedule as JSON to this file ('-' for stdout)")
		integer   = fs.Bool("int", false, "also round to whole processors and report the cost")
		local     = fs.Bool("localsearch", false, "refine with Amdahl-aware membership local search")
		port      = fs.Bool("portfolio", false, "race every heuristic concurrently and keep the best schedule")
		workers   = fs.Int("workers", 0, "worker pool size for -portfolio/-batch (0 = GOMAXPROCS)")
		batch     = fs.String("batch", "", "JSON file of scenarios to serve in one invocation ('-' for stdin)")
		telem     = fs.String("telemetry", "", "append per-heuristic win/loss/margin NDJSON from every full race to this file ('-' for stderr); cmd/ledger ingests it")
		selPath   = fs.String("selector", "", "trained ledger file for -portfolio: serve the predicted winner first, race only on doubt")
	)
	prof := obs.ProfileFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := prof.Start(); err != nil {
		return err
	}
	defer func() {
		if e := prof.Stop(); err == nil {
			err = e
		}
	}()

	if *list {
		for _, h := range sched.ExtendedHeuristics {
			fmt.Fprintln(out, h)
		}
		return nil
	}

	if *local && *port {
		return fmt.Errorf("-localsearch cannot be combined with -portfolio: LocalSearch is already one of the raced heuristics")
	}
	pl := model.Platform{Processors: *procs, CacheSize: *cache, LatencyS: *ls, LatencyL: *ll, Alpha: *alpha}
	var reg *obs.Registry
	var ds *obs.DebugServer
	if *debugAddr != "" {
		reg = obs.NewRegistry()
		ds, err = obs.ServeDebug(*debugAddr, reg)
		if err != nil {
			return err
		}
		defer ds.Close() // error paths only; Close is idempotent
		fmt.Fprintf(os.Stderr, "cosched: debug listener on http://%s\n", ds.Addr())
	}
	copts := []repro.ClientOption{repro.WithWorkers(*workers), repro.WithMetrics(reg)}
	if *selPath != "" {
		if !*port || *batch != "" {
			return fmt.Errorf("-selector requires -portfolio (and is not supported with -batch): the selector chooses among the raced heuristics")
		}
		led, err := selector.LoadFile(*selPath)
		if err != nil {
			return err
		}
		copts = append(copts, repro.WithSelector(led, repro.SelectorThresholds{}))
	}
	client := repro.NewClient(copts...)

	telw, err := openTelemetry(*telem)
	if err != nil {
		return err
	}
	defer func() {
		if e := telw.Close(); err == nil {
			err = e
		}
	}()

	if *batch != "" {
		if err := runBatch(ctx, client, *batch, pl, *seed, out, telw); err != nil {
			return err
		}
		// Drain-then-exit: the report stream is already flushed, so let
		// any in-flight scrape of the final metric state complete before
		// the listener goes away with the process.
		return ds.Close()
	}

	apps, err := loadApps(*appsPath)
	if err != nil {
		return err
	}
	if *seq > 0 {
		for i := range apps {
			apps[i].SeqFraction = *seq
		}
	}

	// Validate -heuristic even in portfolio mode, so a typo is an error
	// rather than silently shadowed by the race over all heuristics.
	h, err := sched.ParseHeuristic(*heuristic)
	if err != nil {
		return err
	}
	var s *sched.Schedule
	var label string
	if *port {
		sc := repro.PortfolioScenario{Platform: pl, Apps: apps, Seed: *seed}
		var rep *repro.PortfolioReport
		if *selPath != "" {
			d, err := client.Select(ctx, sc)
			if err != nil {
				return err
			}
			rep = d.Report
			if d.Predicted {
				fmt.Fprintf(out, "selector: served predicted winner %v (win rate %.0f%%, %d races)\n",
					d.Prediction.Heuristic, 100*d.Prediction.WinRate, d.Prediction.Races)
			} else {
				fmt.Fprintf(out, "selector: full race (%s)\n", d.FallbackReason)
			}
		} else if rep, err = client.Evaluate(ctx, sc); err != nil {
			return err
		}
		// Only genuine races train a ledger: a served prediction is a
		// one-heuristic report and carries no win/loss evidence.
		if len(rep.Results) > 1 {
			if err := telw.record(pl, apps, rep); err != nil {
				return err
			}
		}
		if err := writeRanking(out, rep); err != nil {
			return err
		}
		best := rep.BestResult()
		if best == nil {
			return fmt.Errorf("no heuristic produced a feasible schedule")
		}
		s, label = best.Schedule, best.Heuristic.String()
	} else {
		// The direct path keeps the historical RNG derivation (stream
		// seeded with -seed itself), so single-heuristic output is
		// bit-identical to every earlier release.
		if s, err = h.ScheduleContext(ctx, pl, apps, solve.NewRNG(*seed)); err != nil {
			return err
		}
		label = h.String()
	}
	if *local {
		refined, err := sched.LocalSearchScheduleContext(ctx, pl, apps, sched.LocalSearchOptions{}, solve.NewRNG(*seed))
		if err != nil {
			return err
		}
		if refined.Makespan < s.Makespan {
			fmt.Fprintf(out, "local search improved %s by %.2f%%\n", label, 100*(1-refined.Makespan/s.Makespan))
			s, label = refined, label+"+LocalSearch"
		} else {
			fmt.Fprintf(out, "local search found no improvement over %s\n", label)
		}
	}

	fmt.Fprintf(out, "heuristic: %v   platform: p=%g Cs=%.3g ls=%g ll=%g α=%g\n\n", label, pl.Processors, pl.CacheSize, pl.LatencyS, pl.LatencyL, pl.Alpha)
	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "app\tprocessors\tcache share\tfinish time")
	ft := s.FinishTimes(pl, apps)
	for i, a := range apps {
		fmt.Fprintf(tw, "%s\t%.3f\t%.4f\t%.4g\n", a.Name, s.Assignments[i].Processors, s.Assignments[i].CacheShare, ft[i])
	}
	tw.Flush()
	fmt.Fprintf(out, "\nmakespan: %.6g\n", s.Makespan)

	if *ways > 0 {
		shares := make([]float64, len(s.Assignments))
		for i, a := range s.Assignments {
			shares[i] = a.CacheShare
		}
		alloc, err := cat.Partition(shares, *ways)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "\nCAT realization on %d ways (max rounding error %.4f):\n", *ways, alloc.MaxError)
		for i, a := range apps {
			fmt.Fprintf(out, "  %-8s %s (%d ways)\n", a.Name, cat.FormatMask(alloc.Masks[i], *ways), alloc.WayCounts[i])
		}
	}

	if *integer {
		ri, err := sched.RoundProcessors(pl, apps, s)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "\nwhole-processor realization (makespan ×%.4f):\n", ri.Degradation)
		for i, a := range apps {
			fmt.Fprintf(out, "  %-8s %4d procs\n", a.Name, ri.Processors[i])
		}
	}

	if *simulate || *gantt {
		res, err := sim.Execute(pl, apps, s, sim.Static)
		if err != nil {
			return err
		}
		if *simulate {
			fmt.Fprintf(out, "\nDES cross-check: simulated makespan %.6g, utilization %.1f%%\n",
				res.Makespan, 100*res.ProcessorTime/(pl.Processors*res.Makespan))
		}
		if *gantt {
			fmt.Fprintln(out)
			if err := sim.RenderGantt(out, pl, apps, s, res, 60); err != nil {
				return err
			}
		}
	}

	// Drain-then-flush: every compute phase is done and the metrics are
	// final; finish in-flight scrapes before the last artifact is
	// written and the process exits.
	if err := ds.Close(); err != nil {
		return err
	}

	if *jsonOut != "" {
		w := out
		var closer io.Closer
		if *jsonOut != "-" {
			f, err := os.Create(*jsonOut)
			if err != nil {
				return err
			}
			w, closer = f, f
		} else {
			fmt.Fprintln(out)
		}
		if err := sched.WriteJSON(w, label, pl, apps, s); err != nil {
			return err
		}
		if closer != nil {
			if err := closer.Close(); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeRanking prints the portfolio outcome ordered by makespan, best
// first, with each heuristic's slowdown relative to the winner. Failed
// heuristics and NaN makespans (which the engine never selects as best)
// sort last and carry no ratio.
func writeRanking(out io.Writer, rep *repro.PortfolioReport) error {
	unrankable := func(r repro.PortfolioResult) bool {
		return r.Err != nil || math.IsNaN(r.Schedule.Makespan)
	}
	order := make([]int, len(rep.Results))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ra, rb := rep.Results[order[a]], rep.Results[order[b]]
		switch {
		case unrankable(ra):
			return false
		case unrankable(rb):
			return true
		}
		return ra.Schedule.Makespan < rb.Schedule.Makespan
	})
	best := rep.BestSchedule()
	fmt.Fprintf(out, "portfolio: %d heuristics raced\n", len(rep.Results))
	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "rank\theuristic\tmakespan\tvs best")
	for rank, i := range order {
		r := rep.Results[i]
		switch {
		case r.Err != nil:
			fmt.Fprintf(tw, "-\t%v\terror: %v\t\n", r.Heuristic, r.Err)
		case best == nil || math.IsNaN(r.Schedule.Makespan):
			fmt.Fprintf(tw, "-\t%v\t%.6g\t\n", r.Heuristic, r.Schedule.Makespan)
		default:
			fmt.Fprintf(tw, "%d\t%v\t%.6g\t×%.4f\n", rank+1, r.Heuristic, r.Schedule.Makespan, r.Schedule.Makespan/best.Makespan)
		}
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(out)
	return nil
}

// Batch-mode output shapes. The input side (scenario JSON) is shared
// with the coschedd service — see serve.ScenarioWire — but the CLI
// report keeps its cache-provenance bit, which the service deliberately
// omits.
type resultJSON struct {
	Heuristic string  `json:"heuristic"`
	Makespan  float64 `json:"makespan,omitempty"`
	FromCache bool    `json:"fromCache,omitempty"`
	Error     string  `json:"error,omitempty"`
}

type reportJSON struct {
	Best     string       `json:"best,omitempty"`
	Makespan float64      `json:"makespan,omitempty"`
	Results  []resultJSON `json:"results,omitempty"`
	Error    string       `json:"error,omitempty"`
}

// runBatch serves every scenario of the batch input through the v2
// client's streaming batch evaluator: one NDJSON report line per
// scenario, in input order, as each completes. Decoding, evaluation and
// output form a bounded pipeline (Client.EvaluateBatch caps the
// decoded-but-unreported window at 2×workers), so arbitrarily long
// scenario streams run in bounded memory instead of buffering the whole
// input array and the whole output array. The input may be a JSON array
// of scenarios or an NDJSON stream of scenario objects.
//
// A malformed scenario or unknown heuristic name aborts the batch at
// the point it is decoded; reports already streamed stay valid.
// Cancelling ctx (Ctrl-C) aborts with ctx.Err().
func runBatch(ctx context.Context, client *repro.Client, path string, defaultPl model.Platform, defaultSeed uint64, out io.Writer, tw *telemetryWriter) error {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}

	// The decoder is the scenario iterator: EvaluateBatch pulls it
	// exactly as fast as the evaluation window allows, and stops pulling
	// on failure or cancellation. Its error is read only after
	// EvaluateBatch returns (which happens-after the iterator finished).
	// Each scenario's feature bucket is computed at decode time and kept
	// (a short string, not the scenario), so telemetry can label reports
	// by index without holding the batch in memory.
	var decodeErr error
	var buckets []string
	scenarios := func(yield func(repro.PortfolioScenario) bool) {
		decodeErr = serve.DecodeScenarios(r, path, serve.Defaults{Platform: defaultPl, Seed: defaultSeed}, func(sc repro.PortfolioScenario) bool {
			if tw != nil {
				buckets = append(buckets, selector.Extract(sc.Platform, sc.Apps).Bucket())
			}
			return yield(sc)
		})
	}
	enc := json.NewEncoder(out)
	if err := client.EvaluateBatch(ctx, scenarios, func(br repro.BatchResult) error {
		if tw != nil && br.Index < len(buckets) {
			if err := tw.recordBucket(buckets[br.Index], br.Report); err != nil {
				return err
			}
		}
		return enc.Encode(reportOf(br.Report))
	}); err != nil {
		return err
	}
	return decodeErr
}

// telemetryWriter streams selector.RaceRecord NDJSON lines — the
// ledger's ingest format (cmd/ledger train -telemetry) — one line per
// (heuristic, race). A nil writer is valid and records nothing.
type telemetryWriter struct {
	enc    *json.Encoder
	closer io.Closer
}

// openTelemetry opens the telemetry sink: "" means off (nil writer),
// "-" streams to stderr (stdout carries the reports), anything else
// appends to the named file so successive runs accumulate evidence.
func openTelemetry(path string) (*telemetryWriter, error) {
	if path == "" {
		return nil, nil
	}
	if path == "-" {
		return &telemetryWriter{enc: json.NewEncoder(os.Stderr)}, nil
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &telemetryWriter{enc: json.NewEncoder(f), closer: f}, nil
}

// record emits one race's records, labeling them with the workload's
// feature bucket.
func (t *telemetryWriter) record(pl model.Platform, apps []model.Application, rep *repro.PortfolioReport) error {
	if t == nil {
		return nil
	}
	return t.recordBucket(selector.Extract(pl, apps).Bucket(), rep)
}

func (t *telemetryWriter) recordBucket(bucket string, rep *repro.PortfolioReport) error {
	if t == nil || rep == nil || rep.Err != nil {
		return nil
	}
	outs := make([]selector.Outcome, len(rep.Results))
	for i, r := range rep.Results {
		outs[i] = selector.Outcome{
			Heuristic: r.Heuristic,
			OK:        r.Err == nil && r.Schedule != nil,
		}
		if outs[i].OK {
			outs[i].Makespan = r.Schedule.Makespan
		}
	}
	for _, rr := range selector.Race(bucket, outs) {
		if err := t.enc.Encode(rr); err != nil {
			return err
		}
	}
	return nil
}

func (t *telemetryWriter) Close() error {
	if t == nil || t.closer == nil {
		return nil
	}
	return t.closer.Close()
}

// reportOf converts an engine report to its wire form.
func reportOf(rep *repro.PortfolioReport) reportJSON {
	if rep.Err != nil {
		return reportJSON{Error: rep.Err.Error()}
	}
	rj := reportJSON{}
	if best := rep.BestResult(); best != nil {
		rj.Best = best.Heuristic.String()
		rj.Makespan = best.Schedule.Makespan
	}
	for _, r := range rep.Results {
		res := resultJSON{Heuristic: r.Heuristic.String(), FromCache: r.FromCache}
		if r.Err != nil {
			res.Error = r.Err.Error()
		} else {
			res.Makespan = r.Schedule.Makespan
		}
		rj.Results = append(rj.Results, res)
	}
	return rj
}

// loadApps reads the JSON fleet at path, or returns the built-in NPB
// workload when path is empty.
func loadApps(path string) ([]model.Application, error) {
	if path == "" {
		return workload.NPB(), nil
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var in []des.AppSpec
	if err := json.Unmarshal(raw, &in); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	apps := make([]model.Application, 0, len(in))
	for _, a := range in {
		apps = append(apps, a.Application())
	}
	return apps, nil
}
