package repro_test

import (
	"fmt"
	"math"

	repro "repro"
)

// The basic flow: schedule the paper's six NPB applications with the
// reference heuristic and inspect the resource split.
func Example() {
	pl := repro.TaihuLight()
	apps := repro.NPB()
	for i := range apps {
		apps[i].SeqFraction = 0.05
	}
	s, err := repro.DominantMinRatio.Schedule(pl, apps, nil)
	if err != nil {
		panic(err)
	}
	for i, a := range apps {
		fmt.Printf("%s %.2f %.4f\n", a.Name, s.Assignments[i].Processors, s.Assignments[i].CacheShare)
	}
	// Output:
	// CG 5.85 0.0209
	// BT 185.29 0.3319
	// LU 35.07 0.0875
	// SP 27.37 0.3846
	// MG 1.02 0.0881
	// FT 1.40 0.0870
}

// No single heuristic wins everywhere, so the portfolio engine races
// all of them concurrently and serves the best schedule; the report
// carries every heuristic's outcome for audit.
func ExampleBestSchedule() {
	pl := repro.TaihuLight()
	apps := repro.NPB()
	for i := range apps {
		apps[i].SeqFraction = 0.05
	}
	best, rep, err := repro.BestSchedule(pl, apps, 42)
	if err != nil {
		panic(err)
	}
	reference, err := repro.DominantMinRatio.Schedule(pl, apps, nil)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%d heuristics raced\n", len(rep.Results))
	fmt.Printf("portfolio no worse than the reference heuristic: %v\n", best.Makespan <= reference.Makespan)
	// Output:
	// 12 heuristics raced
	// portfolio no worse than the reference heuristic: true
}

// Cache fractions become Intel CAT capacity bitmasks through
// CATPartition; masks are contiguous and disjoint as the hardware
// requires.
func ExampleCATPartition() {
	pl := repro.TaihuLight()
	apps := repro.NPB()
	s, err := repro.DominantMinRatio.Schedule(pl, apps, nil)
	if err != nil {
		panic(err)
	}
	alloc, err := repro.CATPartition(s, 20)
	if err != nil {
		panic(err)
	}
	fmt.Printf("BT gets %d of 20 ways, mask 0x%05X\n", alloc.WayCounts[1], alloc.Masks[1])
	// Output:
	// BT gets 6 of 20 ways, mask 0x0007E
}

// The discrete-event simulator reproduces the analytic makespan exactly —
// the cross-check used throughout the test suite.
func ExampleSimulate() {
	pl := repro.TaihuLight()
	apps := repro.NPB()
	for i := range apps {
		apps[i].SeqFraction = 0.05
	}
	s, err := repro.DominantRevMaxRatio.Schedule(pl, apps, nil)
	if err != nil {
		panic(err)
	}
	res, err := repro.Simulate(pl, apps, s)
	if err != nil {
		panic(err)
	}
	rel := math.Abs(res.Makespan-s.Makespan) / s.Makespan
	fmt.Println(rel < 1e-9)
	// Output:
	// true
}

// ParseHeuristic resolves policy names, e.g. from a CLI flag.
func ExampleParseHeuristic() {
	h, err := repro.ParseHeuristic("DominantRevMaxRatio")
	if err != nil {
		panic(err)
	}
	fmt.Println(h)
	// Output:
	// DominantRevMaxRatio
}
