package repro_test

import (
	"context"
	"fmt"
	"math"
	"time"

	repro "repro"
)

// The basic flow: schedule the paper's six NPB applications with the
// reference heuristic and inspect the resource split.
func Example() {
	pl := repro.TaihuLight()
	apps := repro.NPB()
	for i := range apps {
		apps[i].SeqFraction = 0.05
	}
	s, err := repro.DominantMinRatio.Schedule(pl, apps, nil)
	if err != nil {
		panic(err)
	}
	for i, a := range apps {
		fmt.Printf("%s %.2f %.4f\n", a.Name, s.Assignments[i].Processors, s.Assignments[i].CacheShare)
	}
	// Output:
	// CG 5.85 0.0209
	// BT 185.29 0.3319
	// LU 35.07 0.0875
	// SP 27.37 0.3846
	// MG 1.02 0.0881
	// FT 1.40 0.0870
}

// No single heuristic wins everywhere, so the client races all of them
// concurrently and serves the best schedule; the report carries every
// heuristic's outcome for audit. Construct one long-lived client and
// reuse it — repeat workloads are then served from its memoization
// cache.
func ExampleClient_best() {
	client := repro.NewClient(repro.WithSeed(42))
	pl := repro.TaihuLight()
	apps := repro.NPB()
	for i := range apps {
		apps[i].SeqFraction = 0.05
	}
	best, rep, err := client.Best(context.Background(), pl, apps)
	if err != nil {
		panic(err)
	}
	reference, err := client.Schedule(context.Background(), repro.DominantMinRatio, pl, apps)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%d heuristics raced\n", len(rep.Results))
	fmt.Printf("portfolio no worse than the reference heuristic: %v\n", best.Makespan <= reference.Makespan)
	// Output:
	// 12 heuristics raced
	// portfolio no worse than the reference heuristic: true
}

// Functional options tune the client: a bounded worker pool, a fixed
// heuristic set, no memoization for workloads that never repeat.
func ExampleNewClient() {
	client := repro.NewClient(
		repro.WithWorkers(2),
		repro.WithHeuristics(repro.DominantMinRatio, repro.Fair, repro.ZeroCache),
		repro.WithCache(false),
	)
	_, rep, err := client.Best(context.Background(), repro.TaihuLight(), repro.NPB())
	if err != nil {
		panic(err)
	}
	fmt.Printf("%d workers, %d heuristics raced\n", client.Workers(), len(rep.Results))
	// Output:
	// 2 workers, 3 heuristics raced
}

// A deadline bounds how long Best may search; an expired context
// surfaces context.DeadlineExceeded instead of a half-baked schedule.
func ExampleClient_deadline() {
	client := repro.NewClient()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	best, _, err := client.Best(ctx, repro.TaihuLight(), repro.NPB())
	if err != nil {
		panic(err)
	}
	fmt.Printf("finished within the deadline: %v\n", best.Makespan > 0)
	// Output:
	// finished within the deadline: true
}

// EvaluateBatch streams scenarios through the worker pool in bounded
// memory: reports are emitted in input order as they complete, so an
// NDJSON-scale batch never buffers whole input or output arrays.
func ExampleClient_evaluateBatch() {
	client := repro.NewClient(repro.WithWorkers(2))
	pl := repro.TaihuLight()
	scenarios := func(yield func(repro.PortfolioScenario) bool) {
		for i := 0; i < 3; i++ {
			apps := repro.NPB()
			for j := range apps {
				apps[j].SeqFraction = 0.01 * float64(i+1)
			}
			if !yield(repro.PortfolioScenario{Platform: pl, Apps: apps, Seed: uint64(i)}) {
				return
			}
		}
	}
	err := client.EvaluateBatch(context.Background(), scenarios, func(br repro.BatchResult) error {
		best := br.Report.BestResult()
		fmt.Printf("scenario %d: %v wins\n", br.Index, best.Heuristic)
		return nil
	})
	if err != nil {
		panic(err)
	}
	// Output:
	// scenario 0: DominantRandom wins
	// scenario 1: SharedCache wins
	// scenario 2: SharedCache wins
}

// Cache fractions become Intel CAT capacity bitmasks through
// CATPartition; masks are contiguous and disjoint as the hardware
// requires.
func ExampleCATPartition() {
	pl := repro.TaihuLight()
	apps := repro.NPB()
	s, err := repro.DominantMinRatio.Schedule(pl, apps, nil)
	if err != nil {
		panic(err)
	}
	alloc, err := repro.CATPartition(s, 20)
	if err != nil {
		panic(err)
	}
	fmt.Printf("BT gets %d of 20 ways, mask 0x%05X\n", alloc.WayCounts[1], alloc.Masks[1])
	// Output:
	// BT gets 6 of 20 ways, mask 0x0007E
}

// The discrete-event simulator reproduces the analytic makespan exactly —
// the cross-check used throughout the test suite.
func ExampleSimulate() {
	pl := repro.TaihuLight()
	apps := repro.NPB()
	for i := range apps {
		apps[i].SeqFraction = 0.05
	}
	s, err := repro.DominantRevMaxRatio.Schedule(pl, apps, nil)
	if err != nil {
		panic(err)
	}
	res, err := repro.Simulate(pl, apps, s)
	if err != nil {
		panic(err)
	}
	rel := math.Abs(res.Makespan-s.Makespan) / s.Makespan
	fmt.Println(rel < 1e-9)
	// Output:
	// true
}

// ParseHeuristic resolves policy names, e.g. from a CLI flag.
func ExampleParseHeuristic() {
	h, err := repro.ParseHeuristic("DominantRevMaxRatio")
	if err != nil {
		panic(err)
	}
	fmt.Println(h)
	// Output:
	// DominantRevMaxRatio
}
