package repro

import (
	"context"
	"testing"
)

// The cache-thrash fix in numbers: BestSchedule used to build a fresh
// engine + cache per call, so a service evaluating the same workload
// repeatedly recomputed all twelve heuristics every time. Routed
// through the shared default client, repeat calls are one cache probe
// per heuristic.

func benchWorkload() ([]Application, Platform) {
	apps := NPB()
	for i := range apps {
		apps[i].SeqFraction = 0.05
	}
	return apps, TaihuLight()
}

// BenchmarkBestScheduleMemoized measures the current shim: repeat calls
// hit the shared default client's memoization cache.
func BenchmarkBestScheduleMemoized(b *testing.B) {
	apps, pl := benchWorkload()
	if _, _, err := BestSchedule(pl, apps, 42); err != nil { // warm the cache
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := BestSchedule(pl, apps, 42); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBestScheduleTransientEngine reproduces the pre-v2 shim — a
// fresh engine and cache per call — as the comparison baseline.
func BenchmarkBestScheduleTransientEngine(b *testing.B) {
	apps, pl := benchWorkload()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep, err := NewPortfolio(0).Evaluate(PortfolioScenario{Platform: pl, Apps: apps, Seed: 42})
		if err != nil {
			b.Fatal(err)
		}
		if rep.BestResult() == nil {
			b.Fatal("no feasible schedule")
		}
	}
}

// BenchmarkClientBestMemoized is the v2 path itself (Client.Best on a
// long-lived client), for comparison with the shims above.
func BenchmarkClientBestMemoized(b *testing.B) {
	apps, pl := benchWorkload()
	c := NewClient(WithSeed(42))
	ctx := context.Background()
	if _, _, err := c.Best(ctx, pl, apps); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := c.Best(ctx, pl, apps); err != nil {
			b.Fatal(err)
		}
	}
}
