// In-situ pipeline co-scheduling — the paper's Section 1 motivation.
//
// A HACC-style cosmology simulation emits a data batch every period; a
// fleet of analysis processes must co-run on a dedicated node and finish
// before the pipeline needs the node again, or batches queue up and data
// spills to the parallel filesystem. This example sizes the pipeline with
// the co-scheduler: per-batch latency under different policies, the best
// pipelining depth (how many consecutive batches to co-schedule
// together), and what happens under a 20% overload.
package main

import (
	"fmt"
	"log"

	repro "repro"
	"repro/internal/pipeline"
	"repro/internal/sched"
)

func main() {
	// Dedicated analysis node: 64 cores, 1 GB partitionable LLC-like
	// staging memory, DRAM ~6× slower.
	pl := repro.Platform{
		Processors: 64,
		CacheSize:  1e9,
		LatencyS:   0.17,
		LatencyL:   1,
		Alpha:      0.5,
	}

	// The per-batch analysis fleet: halo finder, power spectrum,
	// light-cone extraction, compression and two visualization
	// reductions, in the paper's NPB-style parameterization.
	analyses := []repro.Application{
		{Name: "halo-finder", Work: 8.0e10, SeqFraction: 0.04, AccessFreq: 0.62, RefMissRate: 8.0e-3, RefCacheSize: 40e6},
		{Name: "power-spec", Work: 4.5e10, SeqFraction: 0.02, AccessFreq: 0.55, RefMissRate: 1.3e-2, RefCacheSize: 40e6},
		{Name: "light-cone", Work: 2.2e10, SeqFraction: 0.06, AccessFreq: 0.71, RefMissRate: 4.1e-3, RefCacheSize: 40e6},
		{Name: "compress", Work: 6.8e10, SeqFraction: 0.01, AccessFreq: 0.48, RefMissRate: 2.3e-2, RefCacheSize: 40e6},
		{Name: "viz-slice", Work: 1.4e10, SeqFraction: 0.08, AccessFreq: 0.58, RefMissRate: 1.7e-2, RefCacheSize: 40e6},
		{Name: "viz-volume", Work: 3.1e10, SeqFraction: 0.05, AccessFreq: 0.66, RefMissRate: 9.5e-3, RefCacheSize: 40e6},
	}

	// 1. Policy comparison at depth 1.
	fmt.Println("per-batch latency by policy (depth 1):")
	var coPlan *pipeline.Plan
	for _, h := range []repro.Heuristic{repro.DominantMinRatio, repro.Fair, repro.ZeroCache} {
		p, err := pipeline.NewPlan(pipeline.Config{Platform: pl, Analyses: analyses, Heuristic: h})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-18v %.4g\n", h, p.BatchLatency)
		if h == repro.DominantMinRatio {
			coPlan = p
		}
	}

	// 2. Pipelining depth: co-scheduling several consecutive batches
	// amortizes sequential fractions across more concurrent work.
	best, err := pipeline.BestDepth(pipeline.Config{
		Platform: pl, Analyses: analyses, Heuristic: sched.DominantMinRatio,
	}, 6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbest pipelining depth: %d\n", best.Depth)
	fmt.Printf("  sustainable batch period: %.4g (vs %.4g at depth 1, %.1f%% faster cadence)\n",
		best.SustainablePeriod, coPlan.SustainablePeriod,
		100*(1-best.SustainablePeriod/coPlan.SustainablePeriod))
	fmt.Printf("  per-batch latency: %.4g (vs %.4g at depth 1)\n", best.BatchLatency, coPlan.BatchLatency)

	// 3. Feasibility at the planned cadence, and under 20% overload.
	for _, slack := range []float64{1.05, 0.8} {
		period := best.SustainablePeriod * slack
		st, err := best.SimulateArrivals(period, 60)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nsimulating 60 batches every %.4g (%.0f%% of sustainable):\n", period, 100*slack)
		fmt.Printf("  sustainable: %v   max backlog: %d batches   mean latency: %.4g\n",
			st.Sustainable, st.MaxBacklog, st.MeanLatency)
		if !st.Sustainable {
			fmt.Printf("  max deadline miss: %.4g — data spills to the filesystem\n", st.MaxLateness)
		}
	}

	// 4. Who gets the cache? The dominant partition starves streaming
	// analyses that cannot exploit it.
	fmt.Println("\nresource split under DominantMinRatio (depth 1):")
	for i, a := range analyses {
		asg := coPlan.Schedule.Assignments[i]
		fmt.Printf("  %-11s procs %6.2f  cache %.4f\n", a.Name, asg.Processors, asg.CacheShare)
	}
}
