// Capacity planning: for a fixed 16-application mix, sweep the processor
// count and report how the co-scheduling gain evolves (the Figure 5
// question asked through the public API): when is partitioning the cache
// worth it, and when does plain fair sharing suffice?
package main

import (
	"fmt"
	"log"

	repro "repro"
	"repro/internal/solve"
	"repro/internal/workload"
)

func main() {
	// A fixed NPB-SYNTH mix of 16 applications (deterministic seed so
	// the sweep varies only the machine size).
	apps, err := workload.Generate(workload.Config{Generator: workload.GenNPBSynth, N: 16}, solve.NewRNG(99))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("procs  DominantMinRatio     Fair     ZeroCache   gain-vs-Fair")
	for _, p := range []float64{16, 32, 64, 128, 192, 256} {
		pl := repro.TaihuLight()
		pl.Processors = p

		dmr, err := repro.DominantMinRatio.Schedule(pl, apps, nil)
		if err != nil {
			log.Fatal(err)
		}
		fair, err := repro.Fair.Schedule(pl, apps, nil)
		if err != nil {
			log.Fatal(err)
		}
		zero, err := repro.ZeroCache.Schedule(pl, apps, nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%5.0f  %12.4g  %12.4g  %12.4g  %9.1f%%\n",
			p, dmr.Makespan, fair.Makespan, zero.Makespan, 100*(1-dmr.Makespan/fair.Makespan))
	}

	fmt.Println("\nReading the table: with few processors per application, cache")
	fmt.Println("partitioning via dominant partitions is decisive; as processors")
	fmt.Println("become plentiful relative to applications, Fair closes the gap")
	fmt.Println("(Figures 4-5 of the paper).")
}
