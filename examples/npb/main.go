// NPB study: run all ten heuristics of the paper on the six NPB
// applications (Table 2), print the full comparison, and realize the best
// schedule's cache partition as Intel CAT way masks on a 20-way LLC (the
// Xeon E5-2690 geometry used to measure Table 2).
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	repro "repro"
)

func main() {
	pl := repro.TaihuLight()
	apps := repro.NPB()
	for i := range apps {
		apps[i].SeqFraction = 0.03
	}
	rng := repro.NewRNG(2017)

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "heuristic\tmakespan\tvs AllProcCache")
	var best *repro.Schedule
	var bestName string
	var apc float64
	for _, h := range repro.Heuristics {
		s, err := h.Schedule(pl, apps, rng)
		if err != nil {
			log.Fatal(err)
		}
		if h == repro.AllProcCache {
			apc = s.Makespan
		}
		if best == nil || s.Makespan < best.Makespan {
			best, bestName = s, h.String()
		}
		fmt.Fprintf(tw, "%v\t%.4g\t\n", h, s.Makespan)
	}
	tw.Flush()
	fmt.Printf("\nbest: %s (%.1f%% faster than AllProcCache)\n\n", bestName, 100*(1-best.Makespan/apc))

	alloc, err := repro.CATPartition(best, 20)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Intel CAT capacity bitmasks (20-way LLC):")
	for i, a := range apps {
		fmt.Printf("  %-3s COS%d mask=0x%05X (%2d ways, ideal share %.4f, realized %.4f)\n",
			a.Name, i, alloc.Masks[i], alloc.WayCounts[i], best.Assignments[i].CacheShare, alloc.Fractions[i])
	}
	fmt.Printf("max rounding error: %.4f of the LLC\n", alloc.MaxError)
}
