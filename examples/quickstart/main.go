// Quickstart: co-schedule the six NPB applications of the paper's Table 2
// on the reference 256-processor platform and compare the cache-aware
// dominant-partition heuristic against running the applications one after
// another on the whole machine, using the context-aware v2 client.
package main

import (
	"context"
	"fmt"
	"log"

	repro "repro"
)

func main() {
	ctx := context.Background()
	client := repro.NewClient()
	pl := repro.TaihuLight()
	apps := repro.NPB()
	// Give the applications a small sequential fraction, as real codes
	// have; the dominant-partition heuristics tolerate it (Section 6.3).
	for i := range apps {
		apps[i].SeqFraction = 0.05
	}

	co, err := client.Schedule(ctx, repro.DominantMinRatio, pl, apps)
	if err != nil {
		log.Fatal(err)
	}
	seq, err := client.Schedule(ctx, repro.AllProcCache, pl, apps)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("application  processors  cache-share")
	for i, a := range apps {
		fmt.Printf("%-12s %9.2f  %10.4f\n", a.Name, co.Assignments[i].Processors, co.Assignments[i].CacheShare)
	}
	fmt.Printf("\nco-scheduled makespan:   %.4g\n", co.Makespan)
	fmt.Printf("one-after-another:       %.4g\n", seq.Makespan)
	fmt.Printf("co-scheduling gain:      %.1f%%\n", 100*(1-co.Makespan/seq.Makespan))

	// Cross-check with the discrete-event simulator.
	res, err := repro.Simulate(pl, apps, co)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated makespan:      %.4g (matches the analytic model)\n", res.Makespan)
}
