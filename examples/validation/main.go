// Model validation end to end: build three synthetic applications from
// memory traces the way the paper built Table 2 from PEBIL measurements
// (trace → cache-size sweep → Power Law fit), co-schedule them, realize
// the cache split as Intel CAT way masks, replay the traces through the
// way-partitioned LRU simulator and compare measured miss rates against
// the fitted model at the granted capacities.
package main

import (
	"fmt"
	"log"

	repro "repro"
	"repro/internal/sched"
	"repro/internal/solve"
	"repro/internal/trace"
	"repro/internal/validate"
)

func main() {
	sizes := []uint64{256 << 10, 512 << 10, 1 << 20, 2 << 20, 4 << 20}
	mkZipf := func(s float64, seed uint64) func() trace.Generator {
		return func() trace.Generator {
			g, err := trace.NewZipf(16<<20, 64, s, solve.NewRNG(seed))
			if err != nil {
				log.Fatal(err)
			}
			return g
		}
	}

	fmt.Println("characterizing applications (trace → LRU sweep → power-law fit):")
	var apps []validate.TracedApp
	for i, s := range []float64{0.7, 0.9, 1.1} {
		name := fmt.Sprintf("zipf-%.1f", s)
		ta, fit, err := validate.Characterize(name, mkZipf(s, uint64(10+i)),
			sizes, 64, 8, 1e10, 0.02, 0.5, 30000, 60000)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-9s m0(40MB)=%.3e  α=%.3f  R²=%.3f\n", name, fit.M0, fit.Alpha, fit.R2)
		apps = append(apps, ta)
	}

	pl := repro.Platform{
		Processors: 16,
		CacheSize:  8 << 20, // the 8 MB LLC being partitioned
		LatencyS:   0.17,
		LatencyL:   1,
		Alpha:      0.5,
	}
	fmt.Println("\nscheduling, realizing CAT ways, replaying traces:")
	cs, err := validate.Run(pl, apps, sched.DominantMinRatio, 8<<20, 64, 16, 200000, 300000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("  app        ways  fraction  predicted  measured  |error|")
	for _, c := range cs {
		fmt.Printf("  %-9s %5d  %8.4f  %9.4f  %8.4f  %7.4f\n",
			c.Name, c.Ways, c.CacheFraction, c.PredictedMiss, c.MeasuredMiss, c.AbsError)
	}
	fmt.Printf("\nmean absolute miss-rate error: %.4f\n", validate.MeanAbsError(cs))
	fmt.Println("the fitted power law predicts the partitioned simulator's miss")
	fmt.Println("rates — the measurement pipeline the scheduler's inputs rely on")
	fmt.Println("is self-consistent.")
}
