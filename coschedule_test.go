package repro

import (
	"math"
	"testing"

	"repro/internal/cat"
	"repro/internal/workload"
)

func TestFacadeQuickstartFlow(t *testing.T) {
	pl := TaihuLight()
	apps := NPB()
	// Co-scheduling wins once applications have any sequential fraction
	// (Fig. 6); perfectly parallel apps tie with AllProcCache by Lemma 3.
	for i := range apps {
		apps[i].SeqFraction = 0.05
	}
	s, err := DominantMinRatio.Schedule(pl, apps, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(pl, apps); err != nil {
		t.Fatal(err)
	}
	apc, err := AllProcCache.Schedule(pl, apps, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.Makespan >= apc.Makespan {
		t.Fatalf("co-scheduling did not beat sequential execution: %v vs %v", s.Makespan, apc.Makespan)
	}
}

func TestFacadePortfolio(t *testing.T) {
	pl := TaihuLight()
	apps := NPB()
	for i := range apps {
		apps[i].SeqFraction = 0.05
	}
	best, rep, err := BestSchedule(pl, apps, 42)
	if err != nil {
		t.Fatal(err)
	}
	if err := best.Validate(pl, apps); err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != len(Heuristics)+2 {
		t.Fatalf("%d results, want the ten policies plus two extensions", len(rep.Results))
	}
	for _, r := range rep.Results {
		if r.Err != nil {
			t.Fatalf("%v failed: %v", r.Heuristic, r.Err)
		}
		if best.Makespan > r.Schedule.Makespan {
			t.Fatalf("best %v worse than %v's %v", best.Makespan, r.Heuristic, r.Schedule.Makespan)
		}
	}

	// A persistent engine memoizes: re-evaluating the same scenario is
	// served from cache.
	eng := NewPortfolio(2)
	if _, err := eng.Evaluate(PortfolioScenario{Platform: pl, Apps: apps, Seed: 42}); err != nil {
		t.Fatal(err)
	}
	rep2, err := eng.Evaluate(PortfolioScenario{Platform: pl, Apps: apps, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rep2.Results {
		if !r.FromCache {
			t.Fatalf("%v recomputed on identical scenario", r.Heuristic)
		}
	}
	if st := eng.CacheStats(); st.Hits == 0 || st.Misses == 0 {
		t.Fatalf("unexpected cache stats %+v", st)
	}
}

func TestFacadeParseHeuristic(t *testing.T) {
	h, err := ParseHeuristic("DominantRevMaxRatio")
	if err != nil || h != DominantRevMaxRatio {
		t.Fatalf("parse: %v %v", h, err)
	}
	if len(Heuristics) != 10 {
		t.Fatalf("expected 10 heuristics, have %d", len(Heuristics))
	}
}

func TestFacadeExactSchedule(t *testing.T) {
	pl := TaihuLight()
	apps := NPB()
	exact, err := ExactSchedule(pl, apps)
	if err != nil {
		t.Fatal(err)
	}
	dmr, err := DominantMinRatio.Schedule(pl, apps, nil)
	if err != nil {
		t.Fatal(err)
	}
	if dmr.Makespan < exact.Makespan*(1-1e-9) {
		t.Fatalf("heuristic beat the exact optimum: %v < %v", dmr.Makespan, exact.Makespan)
	}
	if dmr.Makespan > exact.Makespan*1.01 {
		t.Fatalf("heuristic 1%% off the optimum on NPB: %v vs %v", dmr.Makespan, exact.Makespan)
	}
}

// Integration: schedule → CAT realization → re-evaluate the schedule with
// the rounded shares → the makespan degradation from way rounding is
// bounded.
func TestScheduleToCATRoundTrip(t *testing.T) {
	pl := TaihuLight()
	apps := NPB()
	s, err := DominantMinRatio.Schedule(pl, apps, nil)
	if err != nil {
		t.Fatal(err)
	}
	alloc, err := CATPartition(s, 20)
	if err != nil {
		t.Fatal(err)
	}
	for i := range apps {
		if s.Assignments[i].CacheShare > 0 && alloc.WayCounts[i] == 0 {
			t.Fatalf("app %d lost its cache in CAT rounding", i)
		}
		if alloc.WayCounts[i] > 0 && !cat.Contiguous(alloc.Masks[i]) {
			t.Fatalf("app %d mask not contiguous", i)
		}
	}
	if cat.Overlap(alloc.Masks) {
		t.Fatal("CAT masks overlap")
	}
	// Re-evaluate execution times with the realized fractions: the
	// worst-case slowdown from rounding on 20 ways stays modest.
	var worst float64
	for i, a := range apps {
		ideal := a.Exe(pl, s.Assignments[i].Processors, s.Assignments[i].CacheShare)
		real := a.Exe(pl, s.Assignments[i].Processors, alloc.Fractions[i])
		worst = math.Max(worst, real/ideal)
	}
	if worst > 1.25 {
		t.Fatalf("CAT rounding cost %v× slowdown", worst)
	}
}

// Integration: schedule → discrete-event simulation cross-check through
// the facade.
func TestScheduleToSimulation(t *testing.T) {
	pl := TaihuLight()
	apps := NPB()
	for i := range apps {
		apps[i].SeqFraction = 0.05
	}
	s, err := DominantRevMaxRatio.Schedule(pl, apps, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(pl, apps, s)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Makespan-s.Makespan) > 1e-6*s.Makespan {
		t.Fatalf("simulation disagrees with model: %v vs %v", res.Makespan, s.Makespan)
	}
	rd, err := SimulateRedistribute(pl, apps, s)
	if err != nil {
		t.Fatal(err)
	}
	if rd.Makespan > res.Makespan*(1+1e-9) {
		t.Fatal("redistribution made things worse")
	}
}

// Integration: generated workloads schedule cleanly at every scale the
// paper sweeps.
func TestWorkloadScalesEndToEnd(t *testing.T) {
	pl := TaihuLight()
	for _, n := range []int{1, 7, 64, 256} {
		apps, err := workload.Generate(workload.Config{Generator: workload.GenRandom, N: n}, NewRNG(uint64(n)))
		if err != nil {
			t.Fatal(err)
		}
		for _, h := range []Heuristic{DominantMinRatio, Fair, ZeroCache, RandomPart} {
			s, err := h.Schedule(pl, apps, NewRNG(1))
			if err != nil {
				t.Fatalf("n=%d %v: %v", n, h, err)
			}
			if err := s.Validate(pl, apps); err != nil {
				t.Fatalf("n=%d %v: %v", n, h, err)
			}
		}
	}
}
